"""Tests for the unified client facade, typed results, the inference-method
registry, and the deprecation shims over the old import surface."""

from __future__ import annotations

import importlib
import warnings

import pytest

import repro
from repro.core.engine import MVQueryEngine
from repro.dblp.config import DblpConfig
from repro.dblp.workload import affiliation_of_author, build_mvdb, students_of_advisor
from repro.errors import ClientError, InferenceError
from repro.results import Answer, QueryResult
from repro.serving.artifact import save_engine


def example1_mvdb(view_weight: float = 0.25) -> repro.MVDB:
    mvdb = repro.MVDB()
    mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0)])
    mvdb.add_probabilistic_table("S", ["x"], [(("a",), 2.0)])
    mvdb.add_markoview(
        repro.MarkoView("V", repro.parse_query("V(x) :- R(x), S(x)"), weight=view_weight)
    )
    return mvdb


@pytest.fixture(scope="module")
def workload():
    return build_mvdb(DblpConfig(group_count=4, seed=0))


@pytest.fixture(scope="module")
def db(workload):
    return repro.connect(workload.mvdb)


class TestConnect:
    def test_connect_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(ClientError, match="exactly one"):
            repro.connect()
        with pytest.raises(ClientError, match="exactly one"):
            repro.connect(example1_mvdb(), artifact=tmp_path / "x.json")

    def test_connect_rejects_build_options_with_artifact(self, db, tmp_path):
        path = db.save(tmp_path / "a.json.gz")
        with pytest.raises(ClientError, match="only apply"):
            repro.connect(artifact=path, workers=2)

    def test_connect_accepts_datalog_strings(self):
        client = repro.connect(example1_mvdb())
        result = client.query("Q :- R(x), S(x)")
        assert isinstance(result, QueryResult)
        assert result.probability(()) == pytest.approx(1.0 / 9.0)

    def test_open_is_exported_alias(self):
        assert repro.open is repro.open_artifact
        assert "open" in repro.__all__

    def test_engine_and_session_reachable(self, db):
        assert isinstance(db.engine, MVQueryEngine)
        assert db.session.engine is db.engine


class TestRoundTrip:
    """Acceptance: the facade round-trips bit-identically with the old path."""

    def test_save_matches_old_export_path_byte_identically(self, db, tmp_path):
        facade_path = db.save(tmp_path / "facade.json.gz")
        legacy_path = save_engine(db.engine, tmp_path / "legacy.json.gz")
        assert facade_path.read_bytes() == legacy_path.read_bytes()

    def test_open_answers_bit_identically(self, db, tmp_path):
        path = db.save(tmp_path / "dblp.json.gz")
        served = repro.open(path)
        query = students_of_advisor("Advisor 0")
        fresh = db.query(query)
        restored = served.query(query)
        # Exact equality, not approx: the artifact preserves variable ids,
        # node ids and component order, so every float replays identically.
        assert restored.to_dict() == fresh.to_dict()
        assert len(fresh) > 0

    def test_stats_surface(self, db):
        stats = db.stats()
        assert stats["possible_tuples"] > 0
        assert stats["w_lineage_clauses"] == db.engine.w_lineage_size
        assert "mvindex" in stats["methods"]
        assert "result_hits" in stats


class TestTypedResults:
    def test_result_and_answer_fields(self, db):
        result = db.query(students_of_advisor("Advisor 1"), method="mvindex")
        assert isinstance(result, QueryResult)
        assert result.method == "mvindex"
        assert result.exact is True
        assert result.wall_time > 0.0
        assert result.touched_components >= 1
        assert result.steps > 0
        assert result.obdd_nodes > 0
        for answer in result:
            assert isinstance(answer, Answer)
            assert 0.0 <= answer.probability <= 1.0
            assert answer.lineage_size >= 1

    def test_iteration_is_sorted_by_probability(self, db):
        result = db.query(students_of_advisor("Advisor 1"))
        probabilities = [answer.probability for answer in result]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_to_dict_matches_engine_map(self, db):
        query = students_of_advisor("Advisor 2")
        assert db.query(query).to_dict() == db.engine.query(query)

    def test_getitem_and_probability(self, db):
        result = db.query(students_of_advisor("Advisor 1"))
        answer = next(iter(result))
        assert result[answer.values] == answer.probability
        assert result.probability(answer.values) == answer.probability
        assert result.probability(("no-such-answer",)) == 0.0
        with pytest.raises(KeyError):
            result[("no-such-answer",)]

    def test_to_json_is_serializable(self, db):
        import json

        document = db.query(students_of_advisor("Advisor 1")).to_json()
        parsed = json.loads(json.dumps(document))
        assert parsed["method"] == "mvindex"
        assert parsed["answers"]

    def test_boolean_probability_raises_on_non_boolean_result(self, db):
        result = db.query(students_of_advisor("Advisor 1"))
        with pytest.raises(InferenceError, match="non-Boolean"):
            result.boolean_probability()

    def test_cache_provenance(self, workload):
        client = repro.connect(workload.mvdb)
        query = students_of_advisor("Advisor 3")
        cold = client.query(query)
        warm = client.query(query)
        assert cold.cached is False
        assert warm.cached is True
        assert warm.to_dict() == cold.to_dict()
        # Cached results keep the work counters of the original computation.
        assert warm.steps == cold.steps

    def test_batch_results_typed_with_provenance(self, workload):
        client = repro.connect(workload.mvdb)
        queries = [students_of_advisor(f"Advisor {i}") for i in range(3)]
        cold = client.query_batch(queries)
        warm = client.query_batch(queries)
        assert [r.cached for r in cold] == [False, False, False]
        assert [r.cached for r in warm] == [True, True, True]
        assert [r.to_dict() for r in cold] == [r.to_dict() for r in warm]
        assert client.session.statistics.relational_passes == 1

    def test_prepare_typed_execute(self, db):
        prepared = db.prepare(students_of_advisor("Advisor 0"))
        by_index = prepared.execute("mvindex")
        by_pointer = prepared.execute("mvindex-mv")
        assert isinstance(by_index, QueryResult)
        assert by_index.to_dict() == by_pointer.to_dict()
        assert by_index.method == "mvindex"
        assert by_pointer.method == "mvindex-mv"

    def test_prepared_boolean_probability_rejects_free_variables(self, db):
        prepared = db.prepare(students_of_advisor("Advisor 0"))
        with pytest.raises(InferenceError, match="free head variables"):
            prepared.boolean_probability()


class TestExtend:
    def test_extend_invalidates_session_caches(self):
        partial = build_mvdb(DblpConfig(group_count=4, seed=0), include_views=("V1", "V2"))
        full = build_mvdb(DblpConfig(group_count=4, seed=0), include_views=("V1", "V2", "V3"))
        client = repro.connect(partial.mvdb)
        # An affiliation query: its lineage lives in the components V3
        # creates, so the extension genuinely moves its probabilities.  (A
        # student/advisor query would not budge — components the query does
        # not touch cancel exactly out of the Theorem 1 ratio.)
        query = affiliation_of_author("Student 0-0")
        before = client.query(query)
        assert client.query(query).cached is True

        added = client.extend(full.mvdb)
        assert added
        after = client.query(query)
        # The caches were dropped: this is a fresh computation against the
        # extended view set, and V3 changes the probabilities.
        assert after.cached is False
        oracle = repro.connect(full.mvdb).query(query)
        assert after.to_dict() == pytest.approx(oracle.to_dict())
        assert before.to_dict() != after.to_dict()


class TestMethodRegistry:
    def test_builtins_registered(self):
        names = repro.methods.names()
        for name in ("mvindex", "mvindex-mv", "obdd", "shannon", "enumeration", "sampling"):
            assert name in names

    def test_unknown_method(self):
        with pytest.raises(InferenceError, match="unknown evaluation method"):
            repro.methods.get("definitely-not-a-method")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InferenceError, match="already registered"):
            repro.methods.register("mvindex", repro.methods.MvIndexMethod)

    def test_replace_allows_override(self):
        original = repro.methods.get("mvindex")
        try:
            repro.methods.register("mvindex", repro.methods.MvIndexMethod, replace=True)
            assert repro.methods.get("mvindex") is not original
        finally:
            repro.methods.register("mvindex", original, replace=True)

    def test_register_rejects_non_methods(self):
        with pytest.raises(InferenceError, match="InferenceMethod"):
            repro.methods.register("bogus", object())
        with pytest.raises(InferenceError, match="InferenceMethod"):
            repro.methods.register("bogus", dict)

    def test_unregister(self):
        class Dummy(repro.methods.InferenceMethod):
            def probability(self, engine, lineage, statistics=None):
                return 0.5

        repro.methods.register("dummy-method", Dummy)
        assert "dummy-method" in repro.methods.names()
        repro.methods.unregister("dummy-method")
        assert "dummy-method" not in repro.methods.names()
        with pytest.raises(InferenceError, match="nothing to unregister"):
            repro.methods.unregister("dummy-method")

    def test_third_party_method_served_through_facade(self):
        class Constant(repro.methods.InferenceMethod):
            exact = False
            description = "always 0.25"

            def probability(self, engine, lineage, statistics=None):
                return 0.25

        repro.methods.register("constant-demo", Constant)
        try:
            client = repro.connect(example1_mvdb())
            result = client.query("Q :- R(x)", method="constant-demo")
            assert result.method == "constant-demo"
            assert result.exact is False
            assert result.probability(()) == 0.25
        finally:
            repro.methods.unregister("constant-demo")

    def test_register_sets_authoritative_name(self):
        # The registry name keys session caches and typed results; a stale
        # class-level name would collide cache entries across methods.
        method = repro.methods.register(
            "sampling-16", repro.methods.SamplingMethod(samples=16)
        )
        try:
            assert method.name == "sampling-16"
            client = repro.connect(example1_mvdb(view_weight=0.25))
            small = client.query("Q :- R(x)", method="sampling-16")
            default = client.query("Q :- R(x)", method="sampling")
            assert small.method == "sampling-16"
            assert default.method == "sampling"
            # Distinct cache entries: the second query is not a cache hit.
            assert default.cached is False
        finally:
            repro.methods.unregister("sampling-16")

    def test_register_rejects_one_instance_under_two_names(self):
        instance = repro.methods.SamplingMethod()
        repro.methods.register("samp-a", instance)
        try:
            with pytest.raises(InferenceError, match="already registered under"):
                repro.methods.register("samp-b", instance)
        finally:
            repro.methods.unregister("samp-a")

    def test_capability_rejection_on_negative_weights(self):
        # weight 4 > 1: the translated NV tuple has a negative weight, which
        # the sampling method's capability flag must refuse.
        client = repro.connect(example1_mvdb(view_weight=4.0))
        assert client.engine.has_nonstandard_probabilities
        with pytest.raises(InferenceError, match="negative tuple"):
            client.query("Q :- R(x)", method="sampling")

    def test_sampling_close_on_supported_engine(self):
        # weight 0.25 < 1: all translated probabilities are in [0, 1].
        client = repro.connect(example1_mvdb(view_weight=0.25))
        exact = client.boolean_probability("Q :- R(x), S(x)", method="mvindex")
        sampled = client.query("Q :- R(x), S(x)", method="sampling")
        assert sampled.exact is False
        assert sampled.probability(()) == pytest.approx(exact, abs=0.05)

    def test_describe_lists_every_method(self):
        text = repro.methods.describe()
        for name in repro.methods.names():
            assert name in text


#: Every pre-existing public package-level import must keep working.
_CORE_NAMES = [
    "METHODS",
    "MVQueryEngine",
    "MVDB",
    "MarkoView",
    "Translation",
    "ViewTranslation",
    "answer_tuple_to_boolean",
    "clamp_probability",
    "theorem1_probability",
]
_SERVING_NAMES = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "DEFAULT_CACHE_SIZE",
    "PreparedQuery",
    "QuerySession",
    "SessionStatistics",
    "canonical_cq_key",
    "canonical_key",
    "engine_from_state",
    "engine_state",
    "load_engine",
    "save_engine",
]


class TestDeprecationShims:
    @pytest.mark.parametrize("name", _CORE_NAMES)
    def test_core_names_warn_but_work(self, name):
        package = importlib.import_module("repro.core")
        source_module, __ = package._DEPRECATED[name]
        with pytest.warns(DeprecationWarning, match=f"importing {name!r} from 'repro.core'"):
            obj = getattr(package, name)
        assert obj is getattr(importlib.import_module(source_module), name)

    @pytest.mark.parametrize("name", _SERVING_NAMES)
    def test_serving_names_warn_but_work(self, name):
        package = importlib.import_module("repro.serving")
        source_module, __ = package._DEPRECATED[name]
        with pytest.warns(
            DeprecationWarning, match=f"importing {name!r} from 'repro.serving'"
        ):
            obj = getattr(package, name)
        assert obj is getattr(importlib.import_module(source_module), name)

    def test_core_translate_function_still_shadows_submodule(self):
        # `from repro.core import translate` has always returned the function.
        from repro.core import translate
        from repro.core.translate import translate as deep

        assert translate is deep

    def test_unknown_attributes_still_raise(self):
        package = importlib.import_module("repro.core")
        with pytest.raises(AttributeError):
            package.not_a_name

    def test_deprecated_engine_still_functional(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.core import MVQueryEngine as LegacyEngine
            from repro.serving import QuerySession as LegacySession

        engine = LegacyEngine(example1_mvdb())
        session = LegacySession(engine)
        legacy = session.query(repro.parse_query("Q :- R(x), S(x)"))
        facade = repro.connect(example1_mvdb()).query("Q :- R(x), S(x)")
        assert legacy == facade.to_dict()

    def test_top_level_legacy_exports_unchanged(self):
        # The original repro/__init__ surface, silently re-exported.
        for name in [
            "Atom",
            "Comparison",
            "ConjunctiveQuery",
            "DNF",
            "Database",
            "Table",
            "TupleIndependentDatabase",
            "UCQ",
            "Variable",
            "parse_query",
        ]:
            assert hasattr(repro, name), name
            assert name in repro.__all__

    def test_facade_code_paths_emit_no_deprecation_warnings(self, workload, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            client = repro.connect(workload.mvdb)
            client.query(students_of_advisor("Advisor 0"))
            client.query_batch([students_of_advisor("Advisor 1")])
            path = client.save(tmp_path / "clean.json.gz")
            repro.open(path).query(students_of_advisor("Advisor 0"))
