"""Tests for MarkoViews, MVDBs, and the MVDB→INDB translation (Theorem 1).

The key correctness property checked here is Theorem 1 itself: the
probability computed through the translated tuple-independent database (with
its possibly-negative probabilities) must equal the ground-truth MLN
semantics of the MVDB obtained by explicit possible-world enumeration.
"""

import math

import pytest

from repro import MVDB, MarkoView
from repro.core.translate import theorem1_probability, translate
from repro.errors import QueryError, SchemaError, WeightError
from repro.indb.weights import (
    CERTAIN_WEIGHT,
    markoview_weight_to_indb_weight,
    probability_to_weight,
    weight_to_probability,
)
from repro.lineage import shannon_probability
from repro.query import parse_query


def example1_mvdb(w1=1.0, w2=2.0, w=0.5):
    """Example 1 of the paper: tuples R(a), S(a) and the view V(x)[w] :- R(x), S(x)."""
    mvdb = MVDB()
    mvdb.add_probabilistic_table("R", ["x"], [(("a",), w1)])
    mvdb.add_probabilistic_table("S", ["x"], [(("a",), w2)])
    mvdb.add_markoview(MarkoView("V", parse_query("V(x) :- R(x), S(x)"), w))
    return mvdb


class TestWeights:
    def test_weight_probability_roundtrip(self):
        assert weight_to_probability(1.0) == pytest.approx(0.5)
        assert weight_to_probability(CERTAIN_WEIGHT) == 1.0
        assert probability_to_weight(0.5) == pytest.approx(1.0)
        assert probability_to_weight(1.0) == CERTAIN_WEIGHT

    def test_view_weight_translation(self):
        assert markoview_weight_to_indb_weight(0.5) == pytest.approx(1.0)
        assert markoview_weight_to_indb_weight(2.0) == pytest.approx(-0.5)
        assert markoview_weight_to_indb_weight(0.0) == CERTAIN_WEIGHT

    def test_negative_view_weight_rejected(self):
        with pytest.raises(WeightError):
            markoview_weight_to_indb_weight(-1.0)

    def test_infinite_view_weight_rejected(self):
        with pytest.raises(WeightError):
            markoview_weight_to_indb_weight(math.inf)

    def test_weight_minus_one_has_no_probability(self):
        with pytest.raises(WeightError):
            weight_to_probability(-1.0)


class TestMarkoView:
    def test_boolean_view_rejected(self):
        with pytest.raises(QueryError):
            MarkoView("V", parse_query("V :- R(x)"), 1.0)

    def test_negative_constant_weight_rejected(self):
        with pytest.raises(WeightError):
            MarkoView("V", parse_query("V(x) :- R(x)"), -2.0)

    def test_callable_weight(self):
        view = MarkoView("V", parse_query("V(x) :- R(x)"), lambda row: 2.0 * row[0])
        assert view.weight_of((3,)) == pytest.approx(6.0)

    def test_callable_weight_validation(self):
        view = MarkoView("V", parse_query("V(x) :- R(x)"), lambda row: -1.0)
        with pytest.raises(WeightError):
            view.weight_of((1,))

    def test_denial_detection(self):
        assert MarkoView("V", parse_query("V(x) :- R(x)"), 0.0).is_denial
        assert not MarkoView("V", parse_query("V(x) :- R(x)"), 2.0).is_denial

    def test_nv_relation_name(self):
        assert MarkoView("V1", parse_query("V1(x) :- R(x)"), 1.0).nv_relation == "NV_V1"


class TestMVDB:
    def test_unknown_relation_in_view_rejected(self):
        mvdb = MVDB()
        mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0)])
        with pytest.raises(SchemaError):
            mvdb.add_markoview(MarkoView("V", parse_query("V(x) :- R(x), Missing(x)"), 1.0))

    def test_duplicate_view_name_rejected(self):
        mvdb = example1_mvdb()
        with pytest.raises(SchemaError):
            mvdb.add_markoview(MarkoView("V", parse_query("V(x) :- R(x)"), 1.0))

    def test_negative_base_weight_rejected(self):
        mvdb = MVDB()
        mvdb.add_probabilistic_table("R", ["x"])
        with pytest.raises(SchemaError):
            mvdb.add_probabilistic_tuple("R", ("a",), -1.0)

    def test_view_tuples_weights_and_lineage(self):
        mvdb = example1_mvdb(w=0.25)
        view = mvdb.views[0]
        tuples = mvdb.view_tuples(view)
        assert len(tuples) == 1
        row, weight, lineage = tuples[0]
        assert row == ("a",)
        assert weight == pytest.approx(0.25)
        assert len(lineage.variables()) == 2

    def test_size_report_includes_views(self):
        report = example1_mvdb().size_report()
        assert report["R"] == 1
        assert report["V"] == 1


class TestExample1Semantics:
    """Closed-form checks of Example 1 (worlds weighted 1, w1, w2, w·w1·w2)."""

    @pytest.mark.parametrize("w", [0.0, 0.5, 1.0, 2.0, 10.0])
    def test_joint_probability(self, w):
        w1, w2 = 1.5, 0.7
        mvdb = example1_mvdb(w1, w2, w)
        z = 1 + w1 + w2 + w * w1 * w2
        expected = w * w1 * w2 / z
        actual = mvdb.exact_query_probability(parse_query("Q :- R(x), S(x)"))
        assert actual == pytest.approx(expected)

    @pytest.mark.parametrize("w", [0.0, 0.5, 1.0, 2.0])
    def test_marginal_of_r(self, w):
        w1, w2 = 1.5, 0.7
        mvdb = example1_mvdb(w1, w2, w)
        z = 1 + w1 + w2 + w * w1 * w2
        expected = (w1 + w * w1 * w2) / z
        assert mvdb.exact_query_probability(parse_query("Q :- R(x)")) == pytest.approx(expected)

    def test_weight_one_means_independence(self):
        mvdb = example1_mvdb(1.0, 1.0, 1.0)
        joint = mvdb.exact_query_probability(parse_query("Q :- R(x), S(x)"))
        assert joint == pytest.approx(0.25)

    def test_weight_zero_makes_tuples_exclusive(self):
        mvdb = example1_mvdb(1.0, 1.0, 0.0)
        joint = mvdb.exact_query_probability(parse_query("Q :- R(x), S(x)"))
        assert joint == pytest.approx(0.0)


class TestTranslation:
    def test_nv_relation_created_with_translated_weights(self):
        mvdb = example1_mvdb(w=2.0)
        translation = translate(mvdb)
        nv = translation.views[0].nv_relation
        assert nv == "NV_V"
        assert translation.indb.weight(nv, ("a",)) == pytest.approx(-0.5)
        probability = translation.indb.probability_of_variable(
            translation.indb.variable_for(nv, ("a",))
        )
        assert probability == pytest.approx(1 - 2.0)  # p0 = 1 - w, negative

    def test_base_tables_preserved(self):
        mvdb = example1_mvdb()
        translation = translate(mvdb)
        assert translation.indb.weight("R", ("a",)) == pytest.approx(1.0)
        assert translation.indb.is_probabilistic("R")

    def test_w_query_structure(self):
        mvdb = example1_mvdb()
        translation = translate(mvdb)
        assert translation.has_views
        disjunct = translation.w_query.disjuncts[0]
        assert disjunct.is_boolean
        assert "NV_V" in {atom.relation for atom in disjunct.atoms}

    def test_denial_view_nv_tuples_are_certain(self):
        mvdb = example1_mvdb(w=0.0)
        translation = translate(mvdb)
        nv = translation.views[0].nv_relation
        variable = translation.indb._var_of[(nv, ("a",))]
        assert translation.indb.is_certain(variable)
        # Certain tuples contribute no lineage variable: the NV atom drops out of W.
        assert translation.indb.variable_for(nv, ("a",)) is None

    def test_independent_weight_one_tuples_skipped(self):
        mvdb = example1_mvdb(w=1.0)
        translation = translate(mvdb)
        assert translation.views[0].independent_tuples == 1
        assert translation.views[0].tuple_count == 0

    def test_no_views_translation(self):
        mvdb = MVDB()
        mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0)])
        translation = translate(mvdb)
        assert not translation.has_views

    def test_theorem1_probability_guard(self):
        with pytest.raises(SchemaError):
            theorem1_probability(0.5, 1.0)
        assert theorem1_probability(0.7, 0.2) == pytest.approx(0.625)


class TestTheorem1:
    """P(Q) computed via Eq. 5 on the translated INDB equals the MLN semantics."""

    @pytest.mark.parametrize("w", [0.0, 0.25, 1.0, 3.0])
    @pytest.mark.parametrize(
        "query_text", ["Q :- R(x)", "Q :- S(x)", "Q :- R(x), S(x)"]
    )
    def test_example1_all_queries(self, w, query_text):
        mvdb = example1_mvdb(1.5, 0.7, w)
        query = parse_query(query_text)
        expected = mvdb.exact_query_probability(query)

        translation = translate(mvdb)
        indb = translation.indb
        probabilities = indb.probabilities()
        q_lineage = indb.lineage_of(query)
        w_lineage = indb.lineage_of(translation.w_query)
        p0_q_or_w = shannon_probability(q_lineage.or_(w_lineage), probabilities)
        p0_w = shannon_probability(w_lineage, probabilities)
        assert theorem1_probability(p0_q_or_w, p0_w) == pytest.approx(expected)

    def test_example2_projected_view(self):
        """Example 2: V(x)[w] :- R(x), S(x,y) correlates all tuples in the lineage."""
        mvdb = MVDB()
        mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0)])
        mvdb.add_probabilistic_table(
            "S", ["x", "y"], [(("a", "b1"), 1.0), (("a", "b2"), 2.0)]
        )
        mvdb.add_markoview(MarkoView("V", parse_query("V(x) :- R(x), S(x, y)"), 3.0))
        query = parse_query("Q :- R(x), S(x, y)")
        expected = mvdb.exact_query_probability(query)

        translation = translate(mvdb)
        indb = translation.indb
        probabilities = indb.probabilities()
        q_lineage = indb.lineage_of(query)
        w_lineage = indb.lineage_of(translation.w_query)
        p0_q_or_w = shannon_probability(q_lineage.or_(w_lineage), probabilities)
        p0_w = shannon_probability(w_lineage, probabilities)
        assert theorem1_probability(p0_q_or_w, p0_w) == pytest.approx(expected)

    def test_two_views_including_denial(self):
        mvdb = MVDB()
        mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0), (("b",), 0.5)])
        mvdb.add_probabilistic_table("S", ["x"], [(("a",), 2.0), (("b",), 1.0)])
        mvdb.add_markoview(MarkoView("V1", parse_query("V1(x) :- R(x), S(x)"), 4.0))
        mvdb.add_markoview(MarkoView("V2", parse_query("V2(x) :- R(x)"), 0.5))
        query = parse_query("Q(x) :- R(x), S(x)")
        expected = mvdb.exact_answer_probabilities(query)

        translation = translate(mvdb)
        indb = translation.indb
        probabilities = indb.probabilities()
        w_lineage = indb.lineage_of(translation.w_query)
        p0_w = shannon_probability(w_lineage, probabilities)
        from repro.query import evaluate_ucq

        result = evaluate_ucq(query, indb.database, indb)
        for answer, lineage in result.lineages().items():
            p0_q_or_w = shannon_probability(lineage.or_(w_lineage), probabilities)
            assert theorem1_probability(p0_q_or_w, p0_w) == pytest.approx(
                expected[answer]
            ), f"answer {answer}"
