"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig4" in output and "fig10" in output

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fig4_tiny_run(self, capsys, tmp_path):
        code = main(["fig4", "--groups", "4", "--points", "2", "--out", str(tmp_path)])
        assert code == 0
        assert "fig4_lineage_size" in capsys.readouterr().out
        assert (tmp_path / "fig4_lineage_size.csv").exists()

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig9"])
        assert args.groups == 14
        assert args.points == 4
        assert args.out is None

    @pytest.mark.parametrize("experiment", ["fig1", "scalability"])
    def test_full_dataset_experiments_tiny(self, capsys, experiment):
        assert main([experiment, "--groups", "4"]) == 0
        assert experiment.replace("fig1", "fig1_dataset_inventory") in capsys.readouterr().out or True
