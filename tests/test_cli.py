"""Tests for the command-line interface."""

import json

import pytest

import repro
from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig4" in output and "fig10" in output

    def test_version_flag(self, capsys):
        assert main(["--version"]) == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_version_flag_on_subparsers(self, capsys):
        # argparse's version action exits 0 from either parser family.
        assert main(["fig4", "--version"]) == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_bad_arguments_are_user_errors(self, capsys):
        # argparse would exit 2; the CLI contract maps usage errors to 1.
        assert main(["fig4", "--groups", "not-a-number"]) == 1
        assert main(["save-index"]) == 1  # missing required --out

    def test_internal_errors_exit_2(self, capsys, monkeypatch):
        def boom(settings):
            raise RuntimeError("kaboom")

        monkeypatch.setattr("repro.cli.fig4_lineage_size", boom)
        assert main(["fig4", "--groups", "4", "--points", "2"]) == 2
        assert "internal error: RuntimeError: kaboom" in capsys.readouterr().err

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_fig4_tiny_run(self, capsys, tmp_path):
        code = main(["fig4", "--groups", "4", "--points", "2", "--out", str(tmp_path)])
        assert code == 0
        assert "fig4_lineage_size" in capsys.readouterr().out
        assert (tmp_path / "fig4_lineage_size.csv").exists()

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig9"])
        assert args.groups == 14
        assert args.points == 4
        assert args.out is None

    @pytest.mark.parametrize("experiment", ["fig1", "scalability"])
    def test_full_dataset_experiments_tiny(self, capsys, experiment):
        assert main([experiment, "--groups", "4"]) == 0
        assert experiment.replace("fig1", "fig1_dataset_inventory") in capsys.readouterr().out or True

    def test_serving_experiment_tiny(self, capsys):
        assert main(["serving", "--groups", "4"]) == 0
        assert "serving_cold_warm" in capsys.readouterr().out


class TestServingCli:
    def test_save_load_serve_round_trip(self, capsys, tmp_path):
        artifact = tmp_path / "dblp.json.gz"
        assert main(["save-index", "--groups", "4", "--out", str(artifact)]) == 0
        assert artifact.exists()
        assert "MV-index" in capsys.readouterr().out

        query = (
            "Q(aid) :- Student(aid, y), Advisor(aid, a), Author(a, n), n like '%Advisor 0%'"
        )
        assert main(["load-index", str(artifact), "--query", query]) == 0
        output = capsys.readouterr().out
        assert "cold start from artifact" in output
        assert "query answered" in output

        assert main(["serve-batch", str(artifact), "--count", "10", "--repeat", "2"]) == 0
        output = capsys.readouterr().out
        assert "round 1 (cold)" in output and "round 2 (warm)" in output
        assert "1 relational pass(es)" in output

    def test_build_index_workers_byte_identical(self, capsys, tmp_path):
        serial = tmp_path / "serial.json.gz"
        parallel = tmp_path / "parallel.json.gz"
        assert main(["build-index", "--groups", "4", "--out", str(serial)]) == 0
        assert (
            main(
                ["build-index", "--groups", "4", "--workers", "2", "--out", str(parallel)]
            )
            == 0
        )
        assert "2 workers" in capsys.readouterr().out
        assert parallel.read_bytes() == serial.read_bytes()

    def test_extend_index_round_trip(self, capsys, tmp_path):
        partial = tmp_path / "partial.json.gz"
        extended = tmp_path / "extended.json.gz"
        assert (
            main(["build-index", "--groups", "4", "--views", "V1,V2", "--out", str(partial)])
            == 0
        )
        assert (
            main(
                [
                    "extend-index",
                    str(partial),
                    "--groups",
                    "4",
                    "--views",
                    "V1,V2,V3",
                    "--out",
                    str(extended),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "incremental extension" in output
        assert (
            main(
                [
                    "load-index",
                    str(extended),
                    "--query",
                    "Q(aid) :- Student(aid, y), Advisor(aid, a), Author(a, n), "
                    "n like '%Advisor 0%'",
                ]
            )
            == 0
        )
        assert "query answered" in capsys.readouterr().out

    def test_extend_index_rejects_mismatched_base(self, capsys, tmp_path):
        partial = tmp_path / "partial.json.gz"
        assert (
            main(["build-index", "--groups", "4", "--views", "V1,V2", "--out", str(partial)])
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "extend-index",
                str(partial),
                "--groups",
                "5",
                "--views",
                "V1,V2,V3",
                "--out",
                str(tmp_path / "bad.json.gz"),
            ]
        )
        assert code == 1
        assert "cannot extend" in capsys.readouterr().err

    def test_serve_batch_from_query_file(self, capsys, tmp_path):
        artifact = tmp_path / "dblp.json"
        assert main(["save-index", "--groups", "4", "--out", str(artifact)]) == 0
        capsys.readouterr()
        queries = tmp_path / "queries.dl"
        queries.write_text(
            "# workload\n"
            "Q(aid) :- Student(aid, y), Advisor(aid, a), Author(a, n), n like '%Advisor 0%'\n"
            "Q(aid1) :- Student(aid, y), Advisor(aid, aid1), Author(aid, n), n like '%Student 1-0%'\n"
        )
        assert main(["serve-batch", str(artifact), "--queries", str(queries)]) == 0
        assert "2 queries" in capsys.readouterr().out

    def test_load_index_json_output(self, capsys, tmp_path):
        artifact = tmp_path / "dblp.json.gz"
        assert main(["save-index", "--groups", "4", "--out", str(artifact)]) == 0
        capsys.readouterr()
        query = (
            "Q(aid) :- Student(aid, y), Advisor(aid, a), Author(a, n), n like '%Advisor 0%'"
        )
        assert main(["load-index", str(artifact), "--query", query, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["method"] == "mvindex"
        assert document["exact"] is True
        assert document["answers"]
        for answer in document["answers"]:
            assert 0.0 <= answer["probability"] <= 1.0
            assert answer["lineage_size"] >= 1

    def test_serve_batch_json_output(self, capsys, tmp_path):
        artifact = tmp_path / "dblp.json.gz"
        assert main(["save-index", "--groups", "4", "--out", str(artifact)]) == 0
        capsys.readouterr()
        assert main(["serve-batch", str(artifact), "--count", "3", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert [round_["label"] for round_ in document["rounds"]] == ["cold", "warm"]
        warm = document["rounds"][1]["results"]
        assert all(result["cached"] for result in warm)
        assert document["cache"]["relational_passes"] == 1

    def test_load_index_missing_artifact_fails(self, capsys, tmp_path):
        assert main(["load-index", str(tmp_path / "missing.json")]) == 1
        assert "no MV-index artifact" in capsys.readouterr().err

    def test_load_index_corrupt_artifact_fails(self, capsys, tmp_path):
        artifact = tmp_path / "dblp.json.gz"
        assert main(["save-index", "--groups", "4", "--out", str(artifact)]) == 0
        capsys.readouterr()
        artifact.write_bytes(artifact.read_bytes()[:100])  # truncate the stream
        assert main(["load-index", str(artifact)]) == 1
        assert "cannot read MV-index artifact" in capsys.readouterr().err

    def test_save_index_rejects_unknown_views(self, capsys, tmp_path):
        # The guard lives in build_mvdb; the CLI relays it as a clean error.
        code = main(["save-index", "--groups", "4", "--views", "V1,V9", "--out", str(tmp_path / "x.json")])
        assert code == 1
        assert "unknown MarkoView name(s)" in capsys.readouterr().err
        assert not (tmp_path / "x.json").exists()

    def test_serve_batch_missing_query_file_fails(self, capsys, tmp_path):
        artifact = tmp_path / "dblp.json"
        assert main(["save-index", "--groups", "4", "--out", str(artifact)]) == 0
        capsys.readouterr()
        missing = tmp_path / "missing.dl"
        assert main(["serve-batch", str(artifact), "--queries", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_load_index_bad_query_fails(self, capsys, tmp_path):
        artifact = tmp_path / "dblp.json"
        assert main(["save-index", "--groups", "4", "--out", str(artifact)]) == 0
        capsys.readouterr()
        assert main(["load-index", str(artifact), "--query", "Q(aid) :- "]) == 1
        assert "error:" in capsys.readouterr().err
