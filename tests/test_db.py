"""Unit tests for the relational substrate (schemas, tables, databases, CSV I/O)."""

import pytest

from repro.db import (
    Attribute,
    Database,
    RelationSchema,
    Table,
    load_database,
    load_table,
    save_database,
)
from repro.errors import SchemaError, UnknownRelationError


class TestRelationSchema:
    def test_arity_and_names(self):
        schema = RelationSchema("Author", ["aid", "name"])
        assert schema.arity == 2
        assert schema.attribute_names == ("aid", "name")

    def test_default_key_is_all_attributes(self):
        schema = RelationSchema("R", ["a", "b"])
        assert schema.key == ("a", "b")

    def test_explicit_key(self):
        schema = RelationSchema("R", ["a", "b"], key=["a"])
        assert schema.key_positions() == (0,)

    def test_position_of_unknown_attribute_raises(self):
        schema = RelationSchema("R", ["a"])
        with pytest.raises(SchemaError):
            schema.position_of("z")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a", "a"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_unknown_key_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a"], key=["b"])

    def test_validate_row_checks_arity(self):
        schema = RelationSchema("R", ["a", "b"])
        with pytest.raises(SchemaError):
            schema.validate_row((1,))

    def test_typed_attribute_validation(self):
        attribute = Attribute("year", int)
        attribute.validate(2005)
        with pytest.raises(SchemaError):
            attribute.validate("2005")


class TestTable:
    def test_insert_and_contains(self):
        table = Table(RelationSchema("R", ["a", "b"]))
        assert table.insert((1, 2)) is True
        assert table.insert((1, 2)) is False
        assert (1, 2) in table
        assert len(table) == 1

    def test_insert_wrong_arity_raises(self):
        table = Table(RelationSchema("R", ["a", "b"]))
        with pytest.raises(SchemaError):
            table.insert((1,))

    def test_delete(self):
        table = Table(RelationSchema("R", ["a"]), rows=[(1,), (2,)])
        assert table.delete((1,)) is True
        assert table.delete((1,)) is False
        assert len(table) == 1

    def test_lookup_by_position(self):
        table = Table(RelationSchema("S", ["a", "b"]), rows=[(1, 10), (1, 20), (2, 30)])
        assert sorted(table.lookup({0: 1})) == [(1, 10), (1, 20)]
        assert table.lookup({0: 1, 1: 20}) == [(1, 20)]
        assert table.lookup({0: 9}) == []

    def test_lookup_empty_bindings_returns_all(self):
        table = Table(RelationSchema("S", ["a"]), rows=[(1,), (2,)])
        assert sorted(table.lookup({})) == [(1,), (2,)]

    def test_lookup_by_attributes(self):
        table = Table(RelationSchema("S", ["a", "b"]), rows=[(1, 10), (2, 20)])
        assert table.lookup_by_attributes(b=20) == [(2, 20)]

    def test_index_maintained_after_insert_and_delete(self):
        table = Table(RelationSchema("S", ["a", "b"]), rows=[(1, 10)])
        assert table.lookup({0: 1}) == [(1, 10)]
        table.insert((1, 99))
        assert sorted(table.lookup({0: 1})) == [(1, 10), (1, 99)]
        table.delete((1, 10))
        assert table.lookup({0: 1}) == [(1, 99)]

    def test_project_distinct(self):
        table = Table(RelationSchema("S", ["a", "b"]), rows=[(1, 10), (1, 20)])
        assert table.project(["a"]) == [(1,)]

    def test_active_domain(self):
        table = Table(RelationSchema("S", ["a", "b"]), rows=[(1, "x")])
        assert table.active_domain() == {1, "x"}


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        db.create_table("R", ["a"], [(1,), (2,)])
        assert len(db.table("R")) == 2
        assert "R" in db

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("R", ["a"])
        with pytest.raises(SchemaError):
            db.create_table("R", ["a"])

    def test_unknown_table_raises(self):
        db = Database()
        with pytest.raises(UnknownRelationError):
            db.table("nope")

    def test_drop_table(self):
        db = Database()
        db.create_table("R", ["a"])
        db.drop_table("R")
        assert "R" not in db
        with pytest.raises(UnknownRelationError):
            db.drop_table("R")

    def test_size_report(self):
        db = Database()
        db.create_table("R", ["a"], [(1,)])
        db.create_table("S", ["a"], [(1,), (2,)])
        assert db.size_report() == {"R": 1, "S": 2}
        assert db.total_rows() == 3

    def test_copy_is_independent(self):
        db = Database()
        db.create_table("R", ["a"], [(1,)])
        clone = db.copy()
        clone.insert("R", (2,))
        assert len(db.table("R")) == 1
        assert len(clone.table("R")) == 2

    def test_active_domain_union(self):
        db = Database()
        db.create_table("R", ["a"], [(1,)])
        db.create_table("S", ["a"], [("x",)])
        assert db.active_domain() == {1, "x"}
        assert db.active_domain(["R"]) == {1}


class TestCsvRoundTrip:
    def test_save_and_load_database(self, tmp_path):
        db = Database()
        db.create_table("Author", ["aid", "name"], [(1, "Ada"), (2, "Alan")])
        db.create_table("Pub", ["pid", "year"], [(7, 1999)])
        save_database(db, tmp_path)
        loaded = load_database(tmp_path)
        assert sorted(loaded.rows("Author")) == [(1, "Ada"), (2, "Alan")]
        assert loaded.rows("Pub") == [(7, 1999)]


class TestCsvEdgeCases:
    """Edge cases of db/csvio.py: quoting, blanks, arity, duplicates."""

    def test_quoted_fields_with_embedded_delimiters(self, tmp_path):
        path = tmp_path / "Author.csv"
        path.write_text(
            'aid,name\n1,"Lovelace, Ada"\n2,"Turing ""Alan"""\n3,"multi\nline"\n'
        )
        table = load_table("Author", path)
        assert sorted(table.rows()) == [
            (1, "Lovelace, Ada"),
            (2, 'Turing "Alan"'),
            (3, "multi\nline"),
        ]

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("a,b\n\n1,2\n\n\n3,4\n\n")
        table = load_table("R", path)
        assert sorted(table.rows()) == [(1, 2), (3, 4)]

    def test_arity_mismatch_reports_line_number(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("a,b\n1,2\n1,2,3\n")
        with pytest.raises(SchemaError, match=r"R\.csv:3: row has 3 fields, expected 2"):
            load_table("R", path)

    def test_missing_field_is_an_arity_mismatch_too(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(SchemaError, match="row has 1 fields, expected 2"):
            load_table("R", path)

    def test_empty_file_without_header_is_rejected(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty CSV file"):
            load_table("R", path)

    def test_duplicate_rows_collapse_to_set_semantics(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("a,b\n1,2\n1,2\n3,4\n1,2\n")
        table = load_table("R", path)
        assert len(table) == 2
        assert sorted(table.rows()) == [(1, 2), (3, 4)]

    def test_type_inference_round_trips(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("a,b,c\n1,1.5,one\n-2,2e3,1_0\n")
        table = load_table("R", path)
        # ints stay ints (including zero-padded and underscore forms, which
        # int() accepts), floats stay floats, non-numeric strings stay strings.
        assert sorted(table.rows()) == [(-2, 2000.0, 10), (1, 1.5, "one")]

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_backends_load_identically(self, tmp_path, backend):
        path = tmp_path / "R.csv"
        path.write_text('a,b\n1,"x,y"\n\n1,"x,y"\n2,z\n')
        table = load_table("R", path, backend=backend)
        assert list(table.rows()) == [(1, "x,y"), (2, "z")]

    def test_load_database_on_sqlite_backend(self, tmp_path):
        db = Database()
        db.create_table("Author", ["aid", "name"], [(1, "Ada"), (2, "Alan")])
        save_database(db, tmp_path)
        loaded = load_database(tmp_path, backend="sqlite")
        assert loaded.backend.name == "sqlite"
        assert sorted(loaded.rows("Author")) == [(1, "Ada"), (2, "Alan")]
        loaded.close()
