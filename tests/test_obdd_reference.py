"""Equivalence of the iterative OBDD kernel and the recursive reference.

Reduced OBDDs are canonical for a fixed variable order, so the explicit-stack
kernel (:mod:`repro.obdd.manager`) and the retained recursive reference
kernel (:mod:`repro.obdd.reference`) must produce *identical* results —
node tables (via the canonical children-first export), model counts, and
probabilities — on every formula.  These property tests drive both kernels
over randomized DNFs and variable orders and assert exact equality.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lineage import DNF
from repro.obdd import ONE, ObddManager, VariableOrder, build_obdd, natural_order
from repro.obdd.manager import iter_paths
from repro.obdd.reference import ReferenceKernel, reference_build_obdd


def model_count(manager: ObddManager, root: int, variable_count: int) -> int:
    """Number of satisfying assignments over ``variable_count`` variables."""
    total = 0
    for assignment, terminal in iter_paths(manager, root):
        if terminal == ONE:
            total += 2 ** (variable_count - len(assignment))
    return total


@st.composite
def random_dnf_order_probabilities(draw):
    variable_count = draw(st.integers(min_value=1, max_value=9))
    clause_count = draw(st.integers(min_value=1, max_value=7))
    clauses = [
        draw(
            st.sets(
                st.integers(min_value=0, max_value=variable_count - 1),
                min_size=1,
                max_size=4,
            )
        )
        for __ in range(clause_count)
    ]
    permutation = draw(st.permutations(list(range(variable_count))))
    probabilities = {
        v: draw(st.floats(min_value=-0.5, max_value=1.0, allow_nan=False))
        for v in range(variable_count)
    }
    return DNF(clauses), VariableOrder(permutation), probabilities, variable_count


class TestKernelEquivalence:
    @given(random_dnf_order_probabilities())
    @settings(max_examples=120, deadline=None)
    def test_identical_node_tables_counts_and_probabilities(self, case):
        formula, order, probabilities, variable_count = case
        for method in ("concat", "synthesis"):
            compiled = build_obdd(formula, order, method=method)
            reference = reference_build_obdd(formula, order, method=method)

            # Identical node tables: the canonical children-first export is a
            # pure function of the reduced OBDD, independent of internal ids.
            exported = compiled.manager.export_nodes([compiled.root])
            reference_exported = reference.manager.export_nodes([reference.root])
            assert exported == reference_exported

            # Identical model counts.
            assert model_count(
                compiled.manager, compiled.root, variable_count
            ) == model_count(reference.manager, reference.root, variable_count)

            # Bit-identical probabilities: the per-node Shannon arithmetic is
            # the same expression in both kernels.
            by_level = order.probabilities_by_level(probabilities)
            kernel = ReferenceKernel(reference.manager)
            assert compiled.manager.probability(
                compiled.root, by_level
            ) == kernel.probability(reference.root, by_level)

    @given(random_dnf_order_probabilities())
    @settings(max_examples=60, deadline=None)
    def test_synthesis_trace_matches_reference_apply_schedule(self, case):
        formula, order, __, ___ = case
        compiled = build_obdd(formula, order, method="synthesis")

        # Replay the exact same clause schedule through the recursive
        # reference: the iterative kernel must perform exactly the pairwise
        # synthesis steps the recursion memoizes (one memo entry per
        # cache-missing pair).
        from repro.obdd.construct import clause_obdd
        from repro.obdd.manager import ZERO

        kernel = ReferenceKernel()
        level_of = order.level_map
        root = ZERO
        for levels in sorted(
            sorted(map(level_of.__getitem__, clause)) for clause in formula.clauses
        ):
            root = kernel.apply("or", root, clause_obdd(kernel.manager, levels))
        assert compiled.manager.apply_steps == len(kernel._apply_memo)
        assert compiled.manager.export_nodes([compiled.root]) == kernel.manager.export_nodes(
            [root]
        )

    @given(random_dnf_order_probabilities(), random_dnf_order_probabilities())
    @settings(max_examples=60, deadline=None)
    def test_apply_and_negate_match_reference(self, left_case, right_case):
        left, __, ___, n_left = left_case
        right, ____, _____, n_right = right_case
        variable_count = max(n_left, n_right)
        order = natural_order(range(variable_count))

        manager = ObddManager()
        f = build_obdd(left, order, manager=manager).root
        g = build_obdd(right, order, manager=manager).root

        reference_manager = ObddManager()
        kernel = ReferenceKernel(reference_manager)
        rf = reference_build_obdd(left, order, manager=reference_manager).root
        rg = reference_build_obdd(right, order, manager=reference_manager).root

        for op, kernel_result in (
            ("or", manager.apply_or(f, g)),
            ("and", manager.apply_and(f, g)),
        ):
            reference_result = kernel.apply(op, rf, rg)
            assert manager.export_nodes([kernel_result]) == reference_manager.export_nodes(
                [reference_result]
            )

        assert manager.export_nodes([manager.negate(f)]) == reference_manager.export_nodes(
            [kernel.negate(rf)]
        )

    @given(random_dnf_order_probabilities())
    @settings(max_examples=40, deadline=None)
    def test_multi_way_applies_match_pairwise_folds(self, case):
        formula, order, __, ___ = case
        manager = ObddManager()
        roots = [
            build_obdd(DNF([clause]), order, manager=manager).root
            for clause in formula.clauses
        ]
        multi_or = manager.apply_or_multi(roots)
        multi_and = manager.apply_and_multi(roots)
        fold_or = roots[0]
        fold_and = roots[0]
        for root in roots[1:]:
            fold_or = manager.apply_or(fold_or, root)
            fold_and = manager.apply_and(fold_and, root)
        # Same manager, canonical reduction: multi-way and pairwise results
        # are literally the same node.
        assert multi_or == fold_or
        assert multi_and == fold_and
