"""Tests for the serving layer: artifacts, canonical keys, query sessions.

The round-trip tests assert *exact* (bit-identical) equality between a
freshly built engine and one cold-started from a saved artifact — the
artifact format preserves variable ids, OBDD node ids and component order,
so every floating-point computation replays identically.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core.engine import METHODS, MVQueryEngine
from repro.core.translate import clamp_probability
from repro.dblp.config import DblpConfig
from repro.dblp.workload import (
    advisor_of_student,
    affiliation_of_author,
    build_mvdb,
    students_of_advisor,
)
from repro.errors import ArtifactError, InferenceError
from repro.obdd.manager import ObddManager
from repro.query import parse_query
from repro.serving.artifact import (
    engine_from_state,
    engine_state,
    load_engine,
    save_engine,
)
from repro.serving.canonical import canonical_key
from repro.serving.session import QuerySession

#: Evaluation methods exercised by the round-trip tests ("enumeration" is
#: exponential and needs tiny inputs, so the DBLP workload excludes it).
ROUND_TRIP_METHODS = [method for method in METHODS if method != "enumeration"]


@pytest.fixture(scope="module")
def workload():
    return build_mvdb(DblpConfig(group_count=4, seed=0))


@pytest.fixture(scope="module")
def engine(workload):
    return MVQueryEngine(workload.mvdb)


@pytest.fixture(scope="module")
def artifact(engine, tmp_path_factory) -> Path:
    return save_engine(engine, tmp_path_factory.mktemp("artifacts") / "dblp.json.gz")


@pytest.fixture(scope="module")
def loaded(artifact) -> MVQueryEngine:
    return load_engine(artifact)


class TestObddManagerSerialization:
    def test_export_import_round_trip(self):
        manager = ObddManager()
        x, y, z = manager.variable(0), manager.variable(1), manager.variable(2)
        root = manager.apply_or(manager.apply_and(x, y), z)
        exported = manager.export_nodes([root])
        restored = ObddManager.import_nodes(exported["nodes"])
        new_root = exported["roots"][0]
        for bits in range(8):
            assignment = {level: bool(bits >> level & 1) for level in range(3)}
            assert restored.evaluate(new_root, assignment) == manager.evaluate(root, assignment)

    def test_export_skips_garbage_nodes(self):
        manager = ObddManager()
        manager.variable(5)  # unreachable from the exported root
        x = manager.variable(0)
        exported = manager.export_nodes([x])
        assert len(exported["nodes"]) == 1

    def test_import_rejects_corrupt_tables(self):
        from repro.errors import CompilationError

        with pytest.raises(CompilationError):
            # Duplicate entries break the id mapping and must be detected.
            ObddManager.import_nodes([[0, 0, 1], [0, 0, 1]])


class TestCanonicalKeys:
    def test_variable_renaming_is_ignored(self):
        a = parse_query("Q(x) :- Student(x, y), Advisor(x, z)")
        b = parse_query("Q(aid) :- Student(aid, year), Advisor(aid, boss)")
        assert canonical_key(a) == canonical_key(b)

    def test_atom_order_is_ignored(self):
        a = parse_query("Q(x) :- Student(x, y), Advisor(x, z)")
        b = parse_query("Q(x) :- Advisor(x, z), Student(x, y)")
        assert canonical_key(a) == canonical_key(b)

    def test_disjunct_order_is_ignored(self):
        a = parse_query("Q(x) :- Student(x, y); Q(x) :- Advisor(x, z)")
        b = parse_query("Q(x) :- Advisor(x, z); Q(x) :- Student(x, y)")
        assert canonical_key(a) == canonical_key(b)

    def test_constants_distinguish_queries(self):
        a = parse_query("Q(x) :- Author(x, n), n like '%A%'")
        b = parse_query("Q(x) :- Author(x, n), n like '%B%'")
        assert canonical_key(a) != canonical_key(b)

    def test_head_variables_distinguish_queries(self):
        a = parse_query("Q(x) :- Advisor(x, z)")
        b = parse_query("Q(z) :- Advisor(x, z)")
        assert canonical_key(a) != canonical_key(b)


class TestArtifactRoundTrip:
    def test_index_statistics_survive(self, engine, loaded):
        assert loaded.mv_index is not None
        assert loaded.mv_index.component_count() == engine.mv_index.component_count()
        assert loaded.mv_index.size == engine.mv_index.size
        assert loaded.mv_index.width == engine.mv_index.width
        assert loaded.w_lineage == engine.w_lineage
        assert loaded.order.variables() == engine.order.variables()
        assert loaded.probabilities == engine.probabilities

    def test_p0_w_is_bit_identical(self, engine, loaded):
        assert loaded.p0_w() == engine.p0_w()

    @pytest.mark.parametrize("method", ROUND_TRIP_METHODS)
    def test_probabilities_bit_identical_across_methods(self, engine, loaded, method):
        queries = [
            students_of_advisor("Advisor 0"),
            advisor_of_student("Student 1-0"),
            affiliation_of_author("Student 2-0"),
        ]
        for query in queries:
            assert loaded.query(query, method=method) == engine.query(query, method=method)

    def test_parallel_build_artifact_is_byte_identical(self, workload, engine, tmp_path):
        # The acceptance scenario of the sharded build: a process-pool build
        # must produce an artifact byte-identical to the serial one.
        parallel = MVQueryEngine(workload.mvdb, workers=2)
        serial_path = save_engine(engine, tmp_path / "serial.json.gz")
        parallel_path = save_engine(parallel, tmp_path / "parallel.json.gz")
        assert parallel_path.read_bytes() == serial_path.read_bytes()

    def test_extended_engine_round_trips(self, tmp_path):
        # Artifacts saved before an extension load and answer identically
        # under the extended engine's workflow: build V1+V2, persist, reload,
        # extend to V1+V2+V3, persist, reload again.
        partial = build_mvdb(DblpConfig(group_count=4, seed=0), include_views=("V1", "V2"))
        engine = MVQueryEngine(partial.mvdb)
        reloaded = load_engine(save_engine(engine, tmp_path / "partial.json.gz"))

        full = build_mvdb(DblpConfig(group_count=4, seed=0))
        added = reloaded.extend_views(full.mvdb)
        assert reloaded.w_lineage_size > engine.w_lineage_size
        assert added or reloaded.mv_index is None

        reextended = load_engine(save_engine(reloaded, tmp_path / "extended.json.gz"))
        fresh = MVQueryEngine(full.mvdb)
        query = students_of_advisor("Advisor 0")
        extended_answers = reloaded.query(query)
        assert reextended.query(query) == extended_answers
        fresh_answers = fresh.query(query)
        assert set(extended_answers) == set(fresh_answers)
        for answer, probability in fresh_answers.items():
            assert extended_answers[answer] == pytest.approx(probability, abs=1e-12)

    def test_extend_views_rejects_different_base_data(self):
        small = build_mvdb(DblpConfig(group_count=4, seed=0), include_views=("V1",))
        other = build_mvdb(DblpConfig(group_count=5, seed=0))
        engine = MVQueryEngine(small.mvdb)
        with pytest.raises(InferenceError, match="cannot extend"):
            engine.extend_views(other.mvdb)

    def test_round_trip_without_index(self, workload, tmp_path):
        bare = MVQueryEngine(workload.mvdb, build_index=False)
        path = save_engine(bare, tmp_path / "bare.json")
        restored = load_engine(path)
        assert restored.mv_index is None
        query = students_of_advisor("Advisor 0")
        assert restored.query(query, method="shannon") == bare.query(query, method="shannon")

    def test_uncompressed_and_compressed_agree(self, engine, tmp_path):
        plain = save_engine(engine, tmp_path / "a.json")
        packed = save_engine(engine, tmp_path / "a.json.gz")
        assert plain.stat().st_size > packed.stat().st_size
        query = students_of_advisor("Advisor 0")
        assert load_engine(plain).query(query) == load_engine(packed).query(query)

    def test_state_is_json_round_trippable(self, engine):
        state = engine_state(engine)
        rebuilt = engine_from_state(json.loads(json.dumps(state)))
        assert rebuilt.p0_w() == engine.p0_w()

    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(ArtifactError, match="no MV-index artifact"):
            load_engine(tmp_path / "nope.json")

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(ArtifactError, match="not an MV-index artifact"):
            load_engine(path)

    def test_wrong_version_raises(self, engine, tmp_path):
        state = engine_state(engine)
        state["version"] = 999
        path = tmp_path / "future.json"
        path.write_text(json.dumps(state))
        with pytest.raises(ArtifactError, match="unsupported artifact version"):
            load_engine(path)

    def test_corrupt_document_raises(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ArtifactError, match="cannot read"):
            load_engine(path)

    def test_structurally_corrupt_state_raises(self, engine, tmp_path):
        # Parseable JSON with the right format/version but missing structure.
        path = tmp_path / "hollow.json"
        path.write_text(json.dumps({"format": "repro-mv-index", "version": 1}))
        with pytest.raises(ArtifactError, match="corrupt MV-index artifact"):
            load_engine(path)
        # ...and with an out-of-range OBDD root id.
        state = engine_state(engine)
        state["index"]["components"][0]["root"] = 10**9
        mangled = tmp_path / "mangled.json"
        mangled.write_text(json.dumps(state))
        with pytest.raises(ArtifactError, match="corrupt MV-index artifact"):
            load_engine(mangled)


class TestNewProcessRoundTrip:
    """The acceptance scenario: reload the artifact in a *fresh* process."""

    def test_new_process_answers_identically(self, engine, artifact):
        query_text = (
            "Q(aid) :- Student(aid, y), Advisor(aid, a), Author(a, n), n like '%Advisor 0%'"
        )
        expected = engine.query(parse_query(query_text), method="mvindex")
        script = (
            "import sys, json, repro\n"
            "db = repro.open(sys.argv[1])\n"
            "answers = db.query(sys.argv[2], method='mvindex').to_dict()\n"
            "print(json.dumps({repr(k): repr(v) for k, v in answers.items()}))\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        output = subprocess.run(
            [sys.executable, "-c", script, str(artifact), query_text],
            check=True,
            capture_output=True,
            text=True,
            env=env,
        ).stdout
        reported = json.loads(output)
        assert reported == {repr(k): repr(v) for k, v in expected.items()}
        assert len(expected) > 0


class TestQuerySession:
    def make_session(self, engine, **kwargs) -> QuerySession:
        return QuerySession(engine, **kwargs)

    def test_result_cache_hit(self, engine):
        session = self.make_session(engine)
        query = students_of_advisor("Advisor 0")
        first = session.query(query)
        second = session.query(query)
        assert first == second
        assert session.statistics.result_hits == 1
        assert session.statistics.result_misses == 1
        assert session.statistics.relational_passes == 1

    def test_canonicalized_variant_hits_cache(self, engine):
        session = self.make_session(engine)
        session.query(
            parse_query(
                "Q(aid) :- Student(aid, year), Advisor(aid, aid1), Author(aid1, n1), "
                "n1 like '%Advisor 0%'"
            )
        )
        # Same query with renamed variables and reordered atoms.
        session.query(
            parse_query(
                "Q(s) :- Author(b, name), Advisor(s, b), Student(s, yr), "
                "name like '%Advisor 0%'"
            )
        )
        assert session.statistics.result_hits == 1
        assert session.statistics.relational_passes == 1

    def test_results_match_uncached_engine(self, engine):
        session = self.make_session(engine)
        for method in ("mvindex", "mvindex-mv"):
            for query in (students_of_advisor("Advisor 1"), advisor_of_student("Student 0-0")):
                assert session.query(query, method=method) == engine.query(query, method=method)

    def test_session_returns_copies(self, engine):
        session = self.make_session(engine)
        query = students_of_advisor("Advisor 0")
        first = session.query(query)
        first.clear()
        assert session.query(query) != {}

    def test_lineage_cache_shared_across_methods(self, engine):
        session = self.make_session(engine)
        query = students_of_advisor("Advisor 0")
        session.query(query, method="mvindex")
        session.query(query, method="mvindex-mv")
        assert session.statistics.relational_passes == 1
        assert session.statistics.lineage_hits == 1

    def test_lru_eviction(self, engine):
        session = self.make_session(engine, cache_size=2)
        for index in range(4):
            session.query(students_of_advisor(f"Advisor {index}"))
        assert session.statistics.evictions > 0
        info = session.cache_info()
        assert info["result_entries"] <= 2
        assert info["lineage_entries"] <= 2

    def test_prepared_query(self, engine):
        session = self.make_session(engine)
        prepared = session.prepare(students_of_advisor("Advisor 0"))
        assert session.statistics.relational_passes == 1
        by_index = prepared.run("mvindex")
        by_pointer = prepared.run("mvindex-mv")
        assert by_index == by_pointer
        # No further relational work was needed after prepare().
        assert session.statistics.relational_passes == 1
        assert by_index == engine.query(students_of_advisor("Advisor 0"))

    def test_boolean_probability(self, engine):
        session = self.make_session(engine)
        query = parse_query(
            "Q :- Student(aid, y), Advisor(aid, a), Author(a, n), n like '%Advisor 0%'"
        )
        assert session.boolean_probability(query) == engine.boolean_probability(query)

    def test_session_rejects_unknown_method(self, engine):
        session = self.make_session(engine)
        with pytest.raises(InferenceError, match="unknown evaluation method"):
            session.query(students_of_advisor("Advisor 0"), method="shanon")

    def test_prepared_query_rejects_unknown_method(self, engine):
        prepared = self.make_session(engine).prepare(students_of_advisor("Advisor 0"))
        with pytest.raises(InferenceError, match="unknown evaluation method"):
            prepared.run(method="mvidnex")

    def test_session_rejects_nv_schema_queries(self, engine):
        session = self.make_session(engine)
        with pytest.raises(InferenceError, match="NV relations"):
            session.query(parse_query("Q(x) :- NV_V1(x, y)"))
        with pytest.raises(InferenceError, match="NV relations"):
            session.prepare(parse_query("Q(x) :- NV_V1(x, y)"))


class TestQueryBatch:
    def batch_queries(self, count: int = 12) -> list:
        queries = [students_of_advisor(f"Advisor {index}") for index in range(count // 2)]
        queries += [affiliation_of_author(f"Student {index}-0") for index in range(count - len(queries))]
        return queries

    def test_single_relational_pass(self, engine):
        session = QuerySession(engine)
        queries = self.batch_queries(12)
        assert len(queries) >= 10
        results = session.query_batch(queries)
        assert len(results) == len(queries)
        assert session.statistics.relational_passes == 1
        assert session.statistics.evaluated_disjuncts == len(queries)

    def test_batch_matches_individual_queries(self, engine):
        session = QuerySession(engine)
        queries = self.batch_queries(12)
        results = session.query_batch(queries)
        for query, answers in zip(queries, results):
            assert answers == engine.query(query, method="mvindex")

    def test_warm_batch_is_all_hits(self, engine):
        session = QuerySession(engine)
        queries = self.batch_queries(12)
        cold = session.query_batch(queries)
        warm = session.query_batch(queries)
        assert cold == warm
        assert session.statistics.relational_passes == 1
        assert session.statistics.result_hits == len(queries)

    def test_duplicate_queries_in_batch_are_deduplicated(self, engine):
        session = QuerySession(engine)
        query = students_of_advisor("Advisor 0")
        results = session.query_batch([query, query, query])
        assert results[0] == results[1] == results[2]
        assert session.statistics.result_misses == 1
        # In-batch duplicates are shared computation, not cache hits.
        assert session.statistics.result_hits == 0
        assert session.statistics.deduplicated == 2

    def test_worker_pool_matches_sequential(self, engine):
        sequential = QuerySession(engine).query_batch(self.batch_queries(12))
        parallel = QuerySession(engine).query_batch(self.batch_queries(12), workers=4)
        assert parallel == sequential

    def test_batch_larger_than_cache_capacity(self, engine):
        # The caches evict mid-batch; the returned answers must not depend on
        # entries surviving until the end of the batch.
        queries = self.batch_queries(12)
        expected = QuerySession(engine).query_batch(queries)
        small = QuerySession(engine, cache_size=3)
        assert small.query_batch(queries) == expected
        assert small.statistics.evictions > 0

    def test_batch_rejects_unknown_method(self, engine):
        with pytest.raises(InferenceError, match="unknown evaluation method"):
            QuerySession(engine).query_batch(self.batch_queries(4), method="shanon")

    def test_batch_shares_disjuncts_across_ucqs(self, engine):
        session = QuerySession(engine)
        union = parse_query(
            "Q(aid) :- Student(aid, y); Q(aid) :- Advisor(aid, a)"
        )
        single = parse_query("Q(aid) :- Student(aid, y)")
        session.query_batch([union, single])
        # The Student disjunct is shared: 2 distinct CQs, not 3.
        assert session.statistics.evaluated_disjuncts == 2


class TestThreadSafety:
    def test_intersection_never_touches_the_recursion_limit(self):
        # The old kernel raised (and had to guard, across threads) the
        # process-global recursion limit during deep traversals; the
        # iterative kernel must serve deep indexes without ever mutating it.
        from repro.lineage.dnf import DNF
        from repro.mvindex import MVIndex, cc_mv_intersect, mv_intersect
        from repro.obdd import natural_order

        variable_count = 6000
        w = DNF([[2 * i, 2 * i + 1] for i in range(variable_count // 2)])
        probabilities = {v: 0.25 + (v % 7) / 10.0 for v in range(variable_count)}
        base = sys.getrecursionlimit()
        index = MVIndex(w, probabilities, natural_order(range(variable_count)))
        query = DNF([[0], [variable_count - 1]])
        pointer = mv_intersect(index, query, probabilities)
        flat = cc_mv_intersect(index, query, probabilities)
        assert pointer == pytest.approx(flat)
        assert sys.getrecursionlimit() == base

    def test_concurrent_queries_agree_with_sequential(self, engine):
        queries = [students_of_advisor(f"Advisor {index}") for index in range(4)]
        expected = [engine.query(query) for query in queries]
        session = QuerySession(engine)
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def worker(worker_id: int) -> None:
            try:
                results[worker_id] = [session.query(query) for query in queries]
            except BaseException as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(index,)) for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for answers in results.values():
            assert answers == expected


class TestClampGuard:
    def test_in_range_passes_through(self):
        assert clamp_probability(0.5) == 0.5
        assert clamp_probability(0.0) == 0.0
        assert clamp_probability(1.0) == 1.0

    def test_noise_is_clamped(self):
        assert clamp_probability(-5e-10) == 0.0
        assert clamp_probability(1.0 + 5e-10) == 1.0

    def test_violations_raise(self):
        with pytest.raises(InferenceError, match="outside"):
            clamp_probability(1.5)
        with pytest.raises(InferenceError, match="outside"):
            clamp_probability(-0.2)

    def test_engine_guard_raises_on_corrupt_numerator(self, workload, monkeypatch):
        # Force the intersection to report an impossible numerator: the
        # method strategy must refuse to return an out-of-range probability.
        from repro.methods import MvIndexMethod

        engine = MVQueryEngine(workload.mvdb)
        monkeypatch.setattr(
            MvIndexMethod, "_intersect", staticmethod(lambda *args, **kwargs: -1e6)
        )
        with pytest.raises(InferenceError, match="outside"):
            engine.query(students_of_advisor("Advisor 0"), method="mvindex")
