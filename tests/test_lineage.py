"""Unit and property tests for DNF lineage, events, and exact probability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InferenceError
from repro.lineage import (
    DNF,
    FALSE,
    TRUE,
    And,
    Not,
    Or,
    Var,
    brute_force_probability,
    disjoin,
    event_from_dnf,
    shannon_probability,
)


class TestDNF:
    def test_false_and_true(self):
        assert DNF.false().is_false
        assert DNF.true().is_true
        assert not DNF.false().is_true

    def test_absorption(self):
        formula = DNF([[1], [1, 2]])
        assert formula.clauses == frozenset({frozenset({1})})

    def test_true_clause_absorbs_everything(self):
        formula = DNF([[], [1, 2]])
        assert formula.is_true
        assert len(formula) == 1

    def test_or(self):
        formula = DNF.variable(1).or_(DNF.variable(2))
        assert formula.variables() == frozenset({1, 2})
        assert len(formula) == 2

    def test_and_distributes(self):
        formula = DNF([[1], [2]]).and_(DNF([[3]]))
        assert formula.clauses == frozenset({frozenset({1, 3}), frozenset({2, 3})})

    def test_and_with_false(self):
        assert DNF.variable(1).and_(DNF.false()).is_false

    def test_condition(self):
        formula = DNF([[1, 2], [3]])
        assert formula.condition(1, True).clauses == frozenset({frozenset({2}), frozenset({3})})
        assert formula.condition(1, False).clauses == frozenset({frozenset({3})})

    def test_evaluate(self):
        formula = DNF([[1, 2], [3]])
        assert formula.evaluate({1: True, 2: True, 3: False})
        assert formula.evaluate({3: True})
        assert not formula.evaluate({1: True})

    def test_restrict_to(self):
        formula = DNF([[1, 2], [3]])
        assert formula.restrict_to([3]).clauses == frozenset({frozenset({3})})

    def test_disjoin(self):
        formula = disjoin([DNF.variable(1), DNF.variable(2), DNF.false()])
        assert formula.variables() == frozenset({1, 2})


class TestEvents:
    def test_event_evaluation(self):
        event = (Var(1) & Var(2)) | ~Var(3)
        assert event.evaluate({1: True, 2: True, 3: True})
        assert event.evaluate({3: False})
        assert not event.evaluate({1: True, 2: False, 3: True})

    def test_constants(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False

    def test_event_from_dnf_matches_dnf(self):
        formula = DNF([[1, 2], [3]])
        event = event_from_dnf(formula)
        for assignment in (
            {1: True, 2: True, 3: False},
            {1: True, 2: False, 3: False},
            {1: False, 2: False, 3: True},
        ):
            assert event.evaluate(assignment) == formula.evaluate(assignment)

    def test_event_variables(self):
        event = And([Var(1), Or([Var(2), Not(Var(5))])])
        assert event.variables() == frozenset({1, 2, 5})


class TestExactProbability:
    def test_single_variable(self):
        assert brute_force_probability(DNF.variable(1), {1: 0.3}) == pytest.approx(0.3)
        assert shannon_probability(DNF.variable(1), {1: 0.3}) == pytest.approx(0.3)

    def test_independent_or(self):
        formula = DNF([[1], [2]])
        probabilities = {1: 0.5, 2: 0.5}
        expected = 1 - 0.5 * 0.5
        assert brute_force_probability(formula, probabilities) == pytest.approx(expected)
        assert shannon_probability(formula, probabilities) == pytest.approx(expected)

    def test_conjunction(self):
        formula = DNF([[1, 2]])
        assert shannon_probability(formula, {1: 0.5, 2: 0.4}) == pytest.approx(0.2)

    def test_shared_variable_formula(self):
        # x1 y1 ∨ x1 y2: P = p1 (1 - (1-q1)(1-q2))
        formula = DNF([[1, 2], [1, 3]])
        probabilities = {1: 0.5, 2: 0.4, 3: 0.6}
        expected = 0.5 * (1 - 0.6 * 0.4)
        assert shannon_probability(formula, probabilities) == pytest.approx(expected)
        assert brute_force_probability(formula, probabilities) == pytest.approx(expected)

    def test_negative_probabilities_are_supported(self):
        formula = DNF([[1, 2], [3]])
        probabilities = {1: -0.5, 2: 0.4, 3: 0.7}
        assert shannon_probability(formula, probabilities) == pytest.approx(
            brute_force_probability(formula, probabilities)
        )

    def test_true_and_false(self):
        assert shannon_probability(DNF.true(), {}) == 1.0
        assert shannon_probability(DNF.false(), {}) == 0.0

    def test_enumeration_limit(self):
        formula = DNF([[i] for i in range(30)])
        with pytest.raises(InferenceError):
            brute_force_probability(formula, {i: 0.5 for i in range(30)})


@st.composite
def small_dnfs(draw):
    """Random monotone DNF over at most 8 variables with random probabilities."""
    n_vars = draw(st.integers(min_value=1, max_value=8))
    n_clauses = draw(st.integers(min_value=1, max_value=6))
    clauses = [
        draw(st.sets(st.integers(min_value=0, max_value=n_vars - 1), min_size=1, max_size=4))
        for __ in range(n_clauses)
    ]
    probabilities = {
        v: draw(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)) for v in range(n_vars)
    }
    return DNF(clauses), probabilities


class TestShannonMatchesEnumeration:
    @given(small_dnfs())
    @settings(max_examples=120, deadline=None)
    def test_shannon_equals_brute_force(self, case):
        formula, probabilities = case
        expected = brute_force_probability(formula, probabilities)
        assert shannon_probability(formula, probabilities) == pytest.approx(expected, abs=1e-9)
