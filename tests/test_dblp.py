"""Tests for the synthetic DBLP workload generator and the Fig. 1 MVDB."""

import math

import pytest

from repro.core.engine import MVQueryEngine
from repro.dblp import (
    DblpConfig,
    advisor_of_student,
    affiliation_of_author,
    build_mvdb,
    build_probabilistic_tables,
    build_sweep_mvdb,
    generate_dblp,
    madden_query,
    restrict_to_aid,
    students_of_advisor,
)

SMALL = DblpConfig(group_count=4, seed=7)


@pytest.fixture(scope="module")
def small_data():
    return generate_dblp(SMALL)


@pytest.fixture(scope="module")
def small_workload(small_data):
    return build_mvdb(SMALL, data=small_data)


class TestGenerator:
    def test_schema_matches_figure1(self, small_data):
        names = set(small_data.database.relation_names())
        assert {"Author", "Wrote", "Pub", "HomePage", "FirstPub", "DBLPAffiliation"} <= names

    def test_deterministic_given_seed(self):
        first = generate_dblp(SMALL)
        second = generate_dblp(SMALL)
        assert first.database.size_report() == second.database.size_report()
        assert sorted(first.database.rows("Wrote")) == sorted(second.database.rows("Wrote"))

    def test_group_structure(self, small_data):
        assert len(small_data.advisors) == SMALL.group_count
        assert all(group < SMALL.group_count for __, group in small_data.students)

    def test_first_pub_is_minimum_year(self, small_data):
        pub_year = {pid: year for pid, __, year in small_data.database.rows("Pub")}
        years_of = {}
        for aid, pid in small_data.database.rows("Wrote"):
            years_of.setdefault(aid, []).append(pub_year[pid])
        for aid, year in small_data.database.rows("FirstPub"):
            assert year == min(years_of[aid])

    def test_advisor_first_pub_precedes_students(self, small_data):
        first_pub = dict(small_data.database.rows("FirstPub"))
        for student_aid, group in small_data.students:
            advisor_aid = small_data.advisors[group]
            assert first_pub[advisor_aid] <= first_pub[student_aid]

    def test_restrict_to_aid(self, small_data):
        max_aid = small_data.advisors[1]
        restricted = restrict_to_aid(small_data, max_aid)
        assert all(aid <= max_aid for aid, __ in restricted.database.rows("Author"))
        assert all(aid <= max_aid for aid, __ in restricted.database.rows("Wrote"))
        assert len(restricted.advisors) <= 2

    def test_scaling_is_monotone(self):
        small = generate_dblp(DblpConfig(group_count=2, seed=1))
        large = generate_dblp(DblpConfig(group_count=6, seed=1))
        assert large.database.total_rows() > small.database.total_rows()


class TestProbabilisticTables:
    def test_student_weight_formula(self, small_data):
        tables = build_probabilistic_tables(small_data)
        first_pub = dict(small_data.database.rows("FirstPub"))
        for (aid, year), weight in list(tables.student.items())[:50]:
            expected = math.exp(1.0 - 0.15 * (year - first_pub[aid]))
            assert weight == pytest.approx(expected)
            assert first_pub[aid] - 1 <= year <= first_pub[aid] + 5

    def test_advisor_weight_formula(self, small_data):
        tables = build_probabilistic_tables(small_data)
        assert tables.advisor, "expected at least one advisor candidate"
        for (aid1, aid2), weight in tables.advisor.items():
            count = tables.student_copub_count[(aid1, aid2)]
            assert count > SMALL.advisor_min_papers
            assert weight == pytest.approx(math.exp(0.25 * count))

    def test_true_advisors_are_candidates(self, small_data):
        tables = build_probabilistic_tables(small_data)
        pairs = set(tables.advisor)
        hits = sum(
            (student_aid, small_data.advisors[group]) in pairs
            for student_aid, group in small_data.students
        )
        assert hits >= len(small_data.students) // 2

    def test_affiliation_weights(self, small_data):
        tables = build_probabilistic_tables(small_data)
        for (aid, inst), weight in tables.affiliation.items():
            assert weight > 1.0
            assert inst.endswith(".edu")


class TestWorkloadMvdb:
    def test_views_present(self, small_workload):
        assert [view.name for view in small_workload.mvdb.views] == ["V1", "V2", "V3"]

    def test_size_report_covers_probabilistic_tables(self, small_workload):
        report = small_workload.size_report()
        for name in ("Student", "Advisor", "V1", "V2"):
            assert name in report

    def test_v1_weights_use_copub_counts(self, small_workload):
        view = small_workload.mvdb.views[0]
        tuples = small_workload.mvdb.view_tuples(view)
        assert tuples
        counts = small_workload.tables.student_copub_count
        for row, weight, __ in tuples[:20]:
            assert weight == pytest.approx(counts.get(row, 0) / 2.0)

    def test_v2_is_denial(self, small_workload):
        assert small_workload.mvdb.views[1].is_denial

    def test_alchemy_configuration_excludes_v3(self, small_data):
        workload = build_mvdb(SMALL, data=small_data, include_views=("V1", "V2"),
                              include_affiliation=False)
        assert [view.name for view in workload.mvdb.views] == ["V1", "V2"]
        assert "Affiliation" not in workload.mvdb.database.relation_names()

    def test_sweep_mvdb_smaller_than_full(self, small_data):
        full = build_mvdb(SMALL, data=small_data, include_views=("V1", "V2"))
        cutoff = sorted(aid for aid, __ in small_data.database.rows("Author"))[
            len(small_data.database.rows("Author")) // 2
        ]
        sweep = build_sweep_mvdb(small_data, cutoff)
        assert sweep.mvdb.possible_tuple_count() < full.mvdb.possible_tuple_count()


class TestWorkloadQueries:
    def test_students_of_advisor_query_returns_group_members(self, small_workload):
        engine = MVQueryEngine(small_workload.mvdb)
        data = small_workload.data
        advisor_aid = data.advisors[0]
        answers = engine.query(students_of_advisor("Advisor 0"))
        assert answers, "expected at least one student answer"
        group_students = {aid for aid, group in data.students if group == 0}
        assert {answer[0] for answer in answers} & group_students
        assert all(0.0 <= probability <= 1.0 for probability in answers.values())
        assert advisor_aid not in {answer[0] for answer in answers}

    def test_advisor_of_student_query(self, small_workload):
        engine = MVQueryEngine(small_workload.mvdb)
        data = small_workload.data
        answers = engine.query(advisor_of_student("Student 0-0"))
        assert answers
        assert data.advisors[0] in {answer[0] for answer in answers}

    def test_affiliation_query(self, small_workload):
        engine = MVQueryEngine(small_workload.mvdb)
        answers = engine.query(affiliation_of_author("Student 0-0"))
        # The student recently co-published with the (affiliated) advisor, so the
        # group institution must be among the probable affiliations.
        assert any(answer[0] == "inst0.edu" for answer in answers)

    def test_madden_style_query_matches_students_query(self, small_workload):
        engine = MVQueryEngine(small_workload.mvdb)
        via_madden = engine.query(madden_query("Advisor 1"))
        via_students = engine.query(students_of_advisor("Advisor 1"))
        assert set(via_madden) == set(via_students)
        for answer, probability in via_madden.items():
            assert probability == pytest.approx(via_students[answer])

    def test_methods_agree_on_workload_query(self, small_workload):
        engine = MVQueryEngine(small_workload.mvdb)
        query = students_of_advisor("Advisor 2")
        by_index = engine.query(query, method="mvindex")
        by_mv = engine.query(query, method="mvindex-mv")
        by_obdd = engine.query(query, method="obdd")
        assert set(by_index) == set(by_obdd) == set(by_mv)
        for answer in by_index:
            assert by_index[answer] == pytest.approx(by_obdd[answer], abs=1e-9)
            assert by_index[answer] == pytest.approx(by_mv[answer], abs=1e-9)
