"""Smoke tests for the experiment harness and runners (tiny scales).

The benchmarks exercise the experiments at their intended scale; these tests
run them at the smallest sensible scale so that regressions in the runners
(not just in the underlying library) are caught by ``pytest tests/``.
"""

import math

import pytest

from repro.experiments import (
    ExperimentResult,
    FullDatasetSettings,
    SweepSettings,
    base_dataset,
    fig1_dataset_inventory,
    fig10_students_of_advisor,
    fig11_affiliation_of_author,
    fig4_lineage_size,
    fig5_advisor_of_student,
    fig7_fig8_obdd_construction,
    fig9_intersection,
    full_workload,
    report,
    scalability_index_build,
    sweep_aid_values,
    time_call,
)

TINY_SWEEP = SweepSettings(
    group_count=5,
    points=2,
    mcsat_samples=4,
    mcsat_burn_in=1,
    mcsat_max_flips=80,
    alchemy_cutoff=1,
)
TINY_FULL = FullDatasetSettings(group_count=5, query_count=3)


class TestHarness:
    def test_time_call_returns_result(self):
        seconds, value = time_call(lambda: 21 * 2)
        assert value == 42
        assert seconds >= 0.0

    def test_experiment_result_table(self):
        result = ExperimentResult("demo", "a demo table", columns=["x", "y"])
        result.add_row(x=1, y=0.5)
        result.add_row(x=2, y=0.25)
        text = result.to_text()
        assert "demo" in text and "0.250000" in text
        assert result.column("x") == [1, 2]

    def test_write_csv_and_report(self, tmp_path):
        result = ExperimentResult("demo", "a demo table", columns=["x"])
        result.add_row(x=3)
        text = report([result], tmp_path)
        assert "demo" in text
        assert (tmp_path / "demo.csv").read_text().splitlines() == ["x", "3"]


class TestSweepRunners:
    def test_sweep_aid_values_monotone(self):
        data = base_dataset(TINY_SWEEP)
        values = sweep_aid_values(data, 3)
        assert values == sorted(values)
        assert len(values) == 3

    def test_fig4(self):
        result = fig4_lineage_size(TINY_SWEEP)
        assert len(result.rows) == TINY_SWEEP.points
        assert all(row["lineage_size"] > 0 for row in result.rows)

    def test_fig5_runs_all_methods(self):
        result = fig5_advisor_of_student(TINY_SWEEP)
        first, last = result.rows[0], result.rows[-1]
        assert first["alchemy_total_s"] > 0
        assert math.isnan(last["alchemy_total_s"])  # beyond the Alchemy cutoff
        assert all(row["mvindex_s"] > 0 for row in result.rows)

    def test_fig7_fig8(self):
        sizes, times = fig7_fig8_obdd_construction(TINY_SWEEP)
        assert sizes.column("obdd_size")[-1] >= sizes.column("obdd_size")[0]
        assert all(steps == 0 for steps in times.column("concat_apply_steps"))

    def test_fig9(self):
        result = fig9_intersection(TINY_SWEEP, repeats=1)
        assert all(row["mvintersect_s"] > 0 for row in result.rows)
        assert all(row["cc_mvintersect_s"] > 0 for row in result.rows)


class TestFullDatasetRunners:
    @pytest.fixture(scope="class")
    def workload(self):
        return full_workload(TINY_FULL)

    def test_fig1(self, workload):
        result = fig1_dataset_inventory(TINY_FULL)
        relations = set(result.column("relation"))
        assert {"Author", "Student", "Advisor", "V1", "V2", "V3"} <= relations

    def test_fig10_and_fig11(self, workload):
        from repro.core.engine import MVQueryEngine

        engine = MVQueryEngine(workload.mvdb)
        fig10 = fig10_students_of_advisor(TINY_FULL, workload, engine)
        fig11 = fig11_affiliation_of_author(TINY_FULL, workload, engine)
        assert len(fig10.rows) == TINY_FULL.query_count
        assert len(fig11.rows) == TINY_FULL.query_count
        assert all(row["seconds"] >= 0 for row in fig10.rows + fig11.rows)

    def test_scalability(self, workload):
        result = scalability_index_build(TINY_FULL, workload)
        row = result.rows[0]
        assert row["index_nodes"] > 0
        assert row["index_components"] >= 1
