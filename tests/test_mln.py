"""Tests for the MLN substrate: grounding, exact inference, Gibbs and MC-SAT."""

import math

import pytest

from repro import MVDB, MarkoView
from repro.errors import WeightError
from repro.lineage import DNF
from repro.mln import (
    GibbsSampler,
    GroundFeature,
    MarkovLogicNetwork,
    McSatSampler,
    features_as_constraints,
    marginals,
    mln_from_mvdb,
    partition_function,
    query_probability,
)
from repro.query import parse_query


def two_tuple_mln(w1=1.0, w2=2.0, w=0.5):
    """The MLN of Example 1: features (R(a), w1), (S(a), w2), (R(a)∧S(a), w)."""
    return MarkovLogicNetwork(
        variables=[0, 1],
        base_weights={0: w1, 1: w2},
        features=[GroundFeature(DNF([[0, 1]]), w)],
    )


class TestModel:
    def test_world_weight_matches_example1(self):
        mln = two_tuple_mln(1.5, 0.7, 2.0)
        assert mln.world_weight({0: False, 1: False}) == pytest.approx(1.0)
        assert mln.world_weight({0: True, 1: False}) == pytest.approx(1.5)
        assert mln.world_weight({0: False, 1: True}) == pytest.approx(0.7)
        assert mln.world_weight({0: True, 1: True}) == pytest.approx(2.0 * 1.5 * 0.7)

    def test_hard_denial_zeroes_world(self):
        mln = two_tuple_mln(w=0.0)
        assert mln.world_weight({0: True, 1: True}) == 0.0
        assert not mln.satisfies_hard_constraints({0: True, 1: True})
        assert mln.satisfies_hard_constraints({0: True, 1: False})

    def test_hard_requirement(self):
        mln = MarkovLogicNetwork(
            variables=[0],
            base_weights={0: 1.0},
            features=[GroundFeature(DNF([[0]]), math.inf)],
        )
        assert mln.world_weight({0: False}) == 0.0
        assert mln.world_weight({0: True}) == pytest.approx(1.0)

    def test_negative_feature_weight_rejected(self):
        with pytest.raises(WeightError):
            GroundFeature(DNF([[0]]), -1.0)

    def test_missing_base_weight_rejected(self):
        with pytest.raises(WeightError):
            MarkovLogicNetwork(variables=[0, 1], base_weights={0: 1.0})

    def test_feature_index_and_constraints(self):
        mln = two_tuple_mln()
        index = mln.features_of_variable()
        assert index[0] == [0]
        assert len(list(features_as_constraints(mln))) == 3

    def test_log_weight(self):
        assert GroundFeature(DNF([[0]]), 1.0).log_weight == pytest.approx(0.0)
        assert GroundFeature(DNF([[0]]), 0.0).log_weight == -math.inf


class TestExact:
    def test_partition_function_example1(self):
        w1, w2, w = 1.5, 0.7, 2.0
        mln = two_tuple_mln(w1, w2, w)
        assert partition_function(mln) == pytest.approx(1 + w1 + w2 + w * w1 * w2)

    def test_query_probability(self):
        w1, w2, w = 1.5, 0.7, 2.0
        mln = two_tuple_mln(w1, w2, w)
        z = 1 + w1 + w2 + w * w1 * w2
        assert query_probability(mln, DNF([[0]])) == pytest.approx((w1 + w * w1 * w2) / z)

    def test_marginals(self):
        mln = two_tuple_mln(1.0, 1.0, 1.0)
        result = marginals(mln)
        assert result[0] == pytest.approx(0.5)
        assert result[1] == pytest.approx(0.5)


class TestMvdbGrounding:
    def test_mln_from_mvdb_matches_mvdb_semantics(self):
        mvdb = MVDB()
        mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0), (("b",), 0.5)])
        mvdb.add_probabilistic_table("S", ["x"], [(("a",), 2.0)])
        mvdb.add_markoview(MarkoView("V", parse_query("V(x) :- R(x), S(x)"), 3.0))
        mln = mln_from_mvdb(mvdb)
        assert mln.variable_count() == 3
        assert mln.feature_count() == 1
        query = parse_query("Q :- R(x), S(x)")
        lineage = mvdb.base.lineage_of(query)
        assert query_probability(mln, lineage) == pytest.approx(
            mvdb.exact_query_probability(query)
        )

    def test_weight_one_views_not_grounded(self):
        mvdb = MVDB()
        mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0)])
        mvdb.add_markoview(MarkoView("V", parse_query("V(x) :- R(x)"), 1.0))
        assert mln_from_mvdb(mvdb).feature_count() == 0


class TestSamplers:
    def test_gibbs_converges_on_independent_network(self):
        mln = MarkovLogicNetwork(variables=[0, 1], base_weights={0: 1.0, 1: 3.0})
        estimates = GibbsSampler(mln, seed=1).estimate_marginals(samples=2000, burn_in=100)
        assert estimates[0] == pytest.approx(0.5, abs=0.05)
        assert estimates[1] == pytest.approx(0.75, abs=0.05)

    def test_gibbs_query_estimate_close_to_exact(self):
        mln = two_tuple_mln(1.5, 0.7, 2.0)
        exact = query_probability(mln, DNF([[0, 1]]))
        estimate = GibbsSampler(mln, seed=3).estimate_query(
            DNF([[0, 1]]), samples=3000, burn_in=200
        )
        assert estimate == pytest.approx(exact, abs=0.06)

    def test_mcsat_query_estimate_close_to_exact(self):
        mln = two_tuple_mln(1.5, 0.7, 2.0)
        exact = query_probability(mln, DNF([[0, 1]]))
        estimate = McSatSampler(mln, seed=7).estimate_query(
            DNF([[0, 1]]), samples=1500, burn_in=100
        )
        assert estimate == pytest.approx(exact, abs=0.08)

    def test_mcsat_respects_denial_constraint(self):
        mln = two_tuple_mln(1.0, 1.0, 0.0)
        sampler = McSatSampler(mln, seed=11)
        for world in sampler.samples(200, burn_in=20):
            assert not (world[0] and world[1])

    def test_mcsat_marginals_close_to_exact(self):
        mln = two_tuple_mln(2.0, 0.5, 0.25)
        exact = marginals(mln)
        estimates = McSatSampler(mln, seed=5).estimate_marginals(samples=1500, burn_in=100)
        for variable in mln.variables:
            assert estimates[variable] == pytest.approx(exact[variable], abs=0.08)

    def test_mcsat_with_hard_requirement(self):
        mln = MarkovLogicNetwork(
            variables=[0, 1],
            base_weights={0: 1.0, 1: 1.0},
            features=[GroundFeature(DNF([[0]]), math.inf)],
        )
        sampler = McSatSampler(mln, seed=2)
        assert all(world[0] for world in sampler.samples(100, burn_in=10))
