"""Tests for ulp-based float comparison and the sanctioned 1-ulp drift.

The second half pins the one known source of floating-point divergence in
the system: an incrementally extended MV-index evaluates delta-compiled
OBDD components whose internal weighted sums can round one step away from
a from-scratch build (the cross-component *product* order is canonicalized
— ascending minimum variable — so it contributes nothing).
``INCREMENTAL_REBUILD_ULPS`` codifies that bound; these tests keep it
honest in both directions — the drift stays within the constant for the
legacy blocking extend, for the prepared (snapshot-compile + epoch-swap)
extend, and for streamed fact appends, and the constant stays small enough
to still detect real bugs.
"""

from __future__ import annotations

import math

import pytest

import repro
from repro.dblp.config import DblpConfig
from repro.dblp.workload import build_mvdb
from repro.numerics import (
    GATE_PROBABILITY_ULPS,
    INCREMENTAL_REBUILD_ULPS,
    ulps_between,
    within_ulps,
)


class TestUlpsBetween:
    def test_identical_floats_are_zero_apart(self):
        assert ulps_between(0.1, 0.1) == 0
        assert ulps_between(-1e300, -1e300) == 0

    def test_adjacent_floats_are_one_apart(self):
        for value in (1.0, -1.0, 0.7037294778245422, 1e22, 5e-324):
            assert ulps_between(value, math.nextafter(value, math.inf)) == 1
            assert ulps_between(value, math.nextafter(value, -math.inf)) == 1

    def test_matches_math_ulp_near_one(self):
        # Stepping N ulps upward from 1.0 lands N * math.ulp(1.0) away.
        value = 1.0
        for steps in range(1, 6):
            value = math.nextafter(value, math.inf)
            assert ulps_between(1.0, value) == steps
            assert value - 1.0 == pytest.approx(steps * math.ulp(1.0))

    def test_signed_zero_and_sign_crossing(self):
        assert ulps_between(0.0, -0.0) == 0
        # The walk from the smallest negative to the smallest positive
        # subnormal crosses zero: two representable steps.
        tiny = 5e-324
        assert ulps_between(-tiny, tiny) == 2

    def test_scale_blindness_of_absolute_tolerances(self):
        # The motivating case: at weight magnitude ~1e22 an absolute 1e-9
        # is far below one ulp, while near 1.0 it allows millions of ulps.
        assert math.ulp(6.5e22) > 1e6
        assert ulps_between(1.0, 1.0 + 1e-9) > 1_000_000

    def test_nan_and_infinity_are_rejected(self):
        with pytest.raises(ValueError):
            ulps_between(math.nan, 1.0)
        with pytest.raises(ValueError):
            ulps_between(1.0, math.inf)
        assert ulps_between(math.inf, math.inf) == 0
        assert not within_ulps(math.nan, math.nan, 10)
        assert not within_ulps(1.0, math.inf, 10)

    def test_within_ulps(self):
        up = math.nextafter(1.0, math.inf)
        assert within_ulps(1.0, up, 1)
        assert not within_ulps(1.0, up, 0)


class TestToleranceConstants:
    def test_constants_are_pinned(self):
        # These values are contractual: the differential/bench gates import
        # them, and loosening them must be a deliberate, reviewed change.
        assert INCREMENTAL_REBUILD_ULPS == 2
        assert GATE_PROBABILITY_ULPS == 4


class TestIncrementalRebuildDrift:
    def test_incremental_extension_drifts_at_most_the_pinned_ulps(self):
        # Build V1+V2, extend incrementally to V1+V2+V3; compare against a
        # from-scratch V1+V2+V3 build.  The affiliation query is the kind
        # whose probabilities V3 changes (Student 0-0 has an affiliation at
        # this scale), and its probability is where the 1-ulp reassociation
        # drift was originally observed.
        affiliation = (
            "Q(inst) :- Affiliation(aid, inst), Author(aid, n), n like '%Student 0-0%'"
        )
        config = DblpConfig(group_count=3, seed=0)
        incremental = repro.connect(
            build_mvdb(config, include_views=("V1", "V2")).mvdb
        )
        incremental.extend(build_mvdb(config).mvdb)
        fresh = repro.connect(build_mvdb(config).mvdb)

        drifted = {
            row.values: row.probability for row in incremental.query(affiliation)
        }
        rebuilt = {row.values: row.probability for row in fresh.query(affiliation)}
        assert drifted.keys() == rebuilt.keys()
        assert drifted
        for answer, probability in drifted.items():
            assert within_ulps(probability, rebuilt[answer], INCREMENTAL_REBUILD_ULPS), (
                f"{answer}: incremental {probability!r} vs fresh {rebuilt[answer]!r} "
                f"differ by {ulps_between(probability, rebuilt[answer])} ulps "
                f"(bound {INCREMENTAL_REBUILD_ULPS})"
            )

    def test_prepared_extend_drifts_at_most_the_pinned_ulps(self):
        # The non-blocking write path splits extend into prepare (snapshot
        # compile, off any lock) and apply (epoch swap).  The prepared path
        # must honor the same drift budget as the legacy blocking extend:
        # the canonicalized component product means prepare/apply cannot
        # introduce a new association order.
        affiliation = (
            "Q(inst) :- Affiliation(aid, inst), Author(aid, n), n like '%Student 0-0%'"
        )
        config = DblpConfig(group_count=3, seed=0)
        prepared = repro.connect(
            build_mvdb(config, include_views=("V1", "V2")).mvdb
        )
        pending = prepared.engine.prepare_extend(build_mvdb(config).mvdb)
        prepared.engine.apply_pending(pending)
        prepared.session.invalidate()
        fresh = repro.connect(build_mvdb(config).mvdb)

        drifted = {
            row.values: row.probability for row in prepared.query(affiliation)
        }
        rebuilt = {row.values: row.probability for row in fresh.query(affiliation)}
        assert drifted.keys() == rebuilt.keys()
        assert drifted
        for answer, probability in drifted.items():
            assert within_ulps(probability, rebuilt[answer], INCREMENTAL_REBUILD_ULPS), (
                f"{answer}: prepared-extend {probability!r} vs fresh "
                f"{rebuilt[answer]!r} differ by "
                f"{ulps_between(probability, rebuilt[answer])} ulps "
                f"(bound {INCREMENTAL_REBUILD_ULPS})"
            )

    def test_append_then_extend_stays_within_the_pinned_ulps(self):
        # Stacked mutations (streamed fact append, then a view extend over
        # the grown base) exercise the headroom ulp: the fresh comparison
        # point is a from-scratch build over the *appended* data.
        affiliation = (
            "Q(inst) :- Affiliation(aid, inst), Author(aid, n), n like '%Student 0-0%'"
        )
        facts = {
            "Author": [[990001, "Ingest Author 990001"]],
            "Student": [[[990001, 2020], 1.5]],
        }
        config = DblpConfig(group_count=3, seed=0)
        stacked = repro.connect(
            build_mvdb(config, include_views=("V1", "V2")).mvdb
        )
        stacked.append_facts(facts)
        stacked.extend(build_mvdb(config).mvdb)

        fresh_mvdb = build_mvdb(config).mvdb
        for row in facts["Author"]:
            fresh_mvdb.database.insert("Author", row)
        for row, weight in facts["Student"]:
            fresh_mvdb.add_probabilistic_tuple("Student", row, weight)
        fresh = repro.connect(fresh_mvdb)

        drifted = {
            row.values: row.probability for row in stacked.query(affiliation)
        }
        rebuilt = {row.values: row.probability for row in fresh.query(affiliation)}
        assert drifted.keys() == rebuilt.keys()
        assert drifted
        for answer, probability in drifted.items():
            assert within_ulps(probability, rebuilt[answer], INCREMENTAL_REBUILD_ULPS), (
                f"{answer}: append+extend {probability!r} vs fresh "
                f"{rebuilt[answer]!r} differ by "
                f"{ulps_between(probability, rebuilt[answer])} ulps "
                f"(bound {INCREMENTAL_REBUILD_ULPS})"
            )
