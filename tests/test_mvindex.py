"""Tests for the MV-index, augmented OBDDs, and the intersection algorithms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompilationError
from repro.lineage import DNF, brute_force_probability
from repro.mvindex import (
    AugmentedObdd,
    FlatObdd,
    IntersectStatistics,
    MVIndex,
    cc_mv_intersect,
    mv_intersect,
    p0_q_or_w,
)
from repro.obdd import build_obdd, natural_order


def _conjunction_probability(q: DNF, w: DNF, probabilities) -> float:
    """Reference value of P0(Q ∧ ¬W) by brute force."""
    variables = sorted(set(q.variables()) | set(w.variables()))
    from repro.lineage.enumeration import enumerate_worlds

    total = 0.0
    for assignment, weight in enumerate_worlds(variables, probabilities):
        if q.evaluate(assignment) and not w.evaluate(assignment):
            total += weight
    return total


class TestAugmentedObdd:
    def test_prob_under_at_root_is_probability(self):
        formula = DNF([[0, 1], [2]])
        order = natural_order(formula.variables())
        compiled = build_obdd(formula, order)
        probabilities = {0: 0.5, 1: 0.4, 2: 0.3}
        augmented = AugmentedObdd(compiled.manager, compiled.root, order, probabilities)
        assert augmented.probability == pytest.approx(
            brute_force_probability(formula, probabilities)
        )

    def test_reachability_of_root_is_one(self):
        formula = DNF([[0, 1]])
        order = natural_order([0, 1])
        compiled = build_obdd(formula, order)
        augmented = AugmentedObdd(compiled.manager, compiled.root, order, {0: 0.5, 1: 0.5})
        assert augmented.reachability[compiled.root] == pytest.approx(1.0)

    def test_conjunction_probability_at_level(self):
        """The Sect. 4.1 shortcut P(X ∧ Φ) via reachability · probUnder.

        The shortcut assumes every accepting path visits the variable, so the
        test formula places x2 in every clause: Φ = x0·x2 ∨ x1·x2.
        """
        formula = DNF([[0, 2], [1, 2]])
        order = natural_order([0, 1, 2])
        compiled = build_obdd(formula, order)
        probabilities = {0: 0.6, 1: 0.5, 2: 0.4}
        augmented = AugmentedObdd(compiled.manager, compiled.root, order, probabilities)
        reference = 0.0
        from repro.lineage.enumeration import enumerate_worlds

        for assignment, weight in enumerate_worlds([0, 1, 2], probabilities):
            if assignment[2] and formula.evaluate(assignment):
                reference += weight
        assert augmented.conjunction_probability_at_level(2) == pytest.approx(reference)

    def test_nodes_at_level_index(self):
        formula = DNF([[0, 2], [1, 2]])
        order = natural_order([0, 1, 2])
        compiled = build_obdd(formula, order)
        augmented = AugmentedObdd(compiled.manager, compiled.root, order, {0: 0.5, 1: 0.5, 2: 0.5})
        assert len(augmented.nodes_at_level(2)) >= 1
        assert augmented.nodes_at_level(99) == []


class TestMVIndex:
    def test_component_partition(self):
        w = DNF([[0, 1], [2, 3], [4]])
        probabilities = {i: 0.5 for i in range(5)}
        index = MVIndex(w, probabilities, natural_order(range(5)))
        assert index.component_count() == 3
        assert index.component_of(0) == index.component_of(1)
        assert index.component_of(0) != index.component_of(2)
        assert index.component_of(99) is None

    def test_probability_w(self):
        w = DNF([[0, 1], [2]])
        probabilities = {0: 0.5, 1: 0.5, 2: 0.25}
        index = MVIndex(w, probabilities, natural_order(range(3)))
        assert index.probability_w() == pytest.approx(
            brute_force_probability(w, probabilities)
        )

    def test_negative_probabilities(self):
        w = DNF([[0, 1]])
        probabilities = {0: -1.0, 1: 0.5}
        index = MVIndex(w, probabilities, natural_order([0, 1]))
        assert index.probability_w() == pytest.approx(
            brute_force_probability(w, probabilities)
        )

    def test_certainly_true_w_rejected(self):
        with pytest.raises(CompilationError):
            MVIndex(DNF.true(), {}, natural_order([]))

    def test_intra_index(self):
        w = DNF([[0, 1], [2]])
        index = MVIndex(w, {0: 0.5, 1: 0.5, 2: 0.5}, natural_order(range(3)))
        assert len(index.nodes_for(0)) >= 1
        assert index.nodes_for(42) == []

    def test_size_and_width(self):
        w = DNF([[2 * i, 2 * i + 1] for i in range(10)])
        probabilities = {i: 0.5 for i in range(20)}
        index = MVIndex(w, probabilities, natural_order(range(20)))
        assert index.size >= 20
        assert index.width >= 1


class TestIntersection:
    def _setup(self):
        w = DNF([[0, 1], [2, 3], [4, 5], [6]])
        probabilities = {0: 0.5, 1: 0.4, 2: 0.3, 3: 0.7, 4: 0.2, 5: 0.6, 6: 0.1, 7: 0.5, 8: 0.25}
        index = MVIndex(w, {k: v for k, v in probabilities.items() if k <= 6}, natural_order(range(7)))
        return w, probabilities, index

    def test_mv_intersect_matches_brute_force(self):
        w, probabilities, index = self._setup()
        q = DNF([[0, 2], [7]])
        expected = _conjunction_probability(q, w, probabilities)
        assert mv_intersect(index, q, probabilities) == pytest.approx(expected)

    def test_cc_intersect_matches_brute_force(self):
        w, probabilities, index = self._setup()
        q = DNF([[0, 2], [7]])
        expected = _conjunction_probability(q, w, probabilities)
        assert cc_mv_intersect(index, q, probabilities) == pytest.approx(expected)

    def test_query_touching_no_component(self):
        w, probabilities, index = self._setup()
        q = DNF([[7, 8]])
        expected = _conjunction_probability(q, w, probabilities)
        assert mv_intersect(index, q, probabilities) == pytest.approx(expected)
        assert cc_mv_intersect(index, q, probabilities) == pytest.approx(expected)

    def test_true_and_false_queries(self):
        w, probabilities, index = self._setup()
        assert mv_intersect(index, DNF.false(), probabilities) == 0.0
        assert mv_intersect(index, DNF.true(), probabilities) == pytest.approx(
            index.probability_not_w()
        )
        assert cc_mv_intersect(index, DNF.true(), probabilities) == pytest.approx(
            index.probability_not_w()
        )

    def test_p0_q_or_w(self):
        w, probabilities, index = self._setup()
        q = DNF([[0, 4]])
        variables = sorted(set(q.variables()) | set(w.variables()))
        from repro.lineage.enumeration import enumerate_worlds

        expected = 0.0
        for assignment, weight in enumerate_worlds(variables, probabilities):
            if q.evaluate(assignment) or w.evaluate(assignment):
                expected += weight
        assert p0_q_or_w(index, q, probabilities, algorithm="mv") == pytest.approx(expected)
        assert p0_q_or_w(index, q, probabilities, algorithm="cc") == pytest.approx(expected)

    def test_statistics_report_component_pruning(self):
        w, probabilities, index = self._setup()
        statistics = IntersectStatistics()
        mv_intersect(index, DNF([[0]]), probabilities, statistics=statistics)
        assert statistics.touched_components == 1
        assert statistics.untouched_components == index.component_count() - 1

    def test_flat_obdd_roundtrip(self):
        formula = DNF([[0, 1], [2]])
        order = natural_order([0, 1, 2])
        compiled = build_obdd(formula, order)
        flat = FlatObdd.from_manager(compiled.manager, compiled.root)
        assert len(flat) == compiled.size + 2


class TestParallelBuild:
    def _w(self, pairs: int = 24) -> tuple[DNF, dict[int, float]]:
        clauses = [[2 * i, 2 * i + 1] for i in range(pairs)]
        clauses += [[4 * i, 4 * i + 2] for i in range(pairs // 2)]
        w = DNF(clauses)
        probabilities = {v: 0.1 + (v % 8) / 10.0 for v in w.variables()}
        return w, probabilities

    def test_sharded_build_exports_identical_state(self):
        w, probabilities = self._w()
        order = natural_order(sorted(w.variables()))
        serial = MVIndex(w, probabilities, order)
        sharded = MVIndex(w, probabilities, order, workers=3)
        assert sharded.export_state() == serial.export_state()
        assert sharded.component_count() == serial.component_count()
        assert sharded.probability_w() == serial.probability_w()

    def test_sharded_build_answers_identically(self):
        w, probabilities = self._w()
        order = natural_order(sorted(w.variables()))
        serial = MVIndex(w, probabilities, order)
        sharded = MVIndex(w, probabilities, order, workers=2)
        query = DNF([[0, 4], [9]])
        assert mv_intersect(sharded, query, probabilities) == mv_intersect(
            serial, query, probabilities
        )
        assert cc_mv_intersect(sharded, query, probabilities) == cc_mv_intersect(
            serial, query, probabilities
        )

    def test_single_component_falls_back_to_serial(self):
        w = DNF([[0, 1], [1, 2]])
        probabilities = {0: 0.5, 1: 0.4, 2: 0.3}
        index = MVIndex(w, probabilities, natural_order(range(3)), workers=4)
        assert index.component_count() == 1
        assert index.probability_w() == pytest.approx(
            brute_force_probability(w, probabilities)
        )


class TestIncrementalExtend:
    def test_extend_with_disjoint_views(self):
        w1 = DNF([[0, 1], [2]])
        probabilities = {0: 0.5, 1: 0.4, 2: 0.3}
        index = MVIndex(w1, probabilities, natural_order(range(3)))
        new = DNF([[3, 4]])
        added = index.extend(new, probabilities={3: 0.6, 4: 0.2})
        assert len(added) == 1
        merged = w1.or_(new)
        merged_probabilities = {**probabilities, 3: 0.6, 4: 0.2}
        assert index.probability_w() == pytest.approx(
            brute_force_probability(merged, merged_probabilities)
        )
        assert index.component_of(3) == index.component_of(4)
        # Queries over old and new variables both work.
        q = DNF([[0, 3]])
        expected = _conjunction_probability(q, merged, merged_probabilities)
        assert cc_mv_intersect(index, q, merged_probabilities) == pytest.approx(expected)
        assert mv_intersect(index, q, merged_probabilities) == pytest.approx(expected)

    def test_extend_recompiles_connected_components(self):
        w1 = DNF([[0, 1], [4, 5]])
        probabilities = {v: 0.3 + v / 20.0 for v in range(6)}
        index = MVIndex(w1, probabilities, natural_order(range(6)))
        assert index.component_count() == 2
        # The new clause bridges both existing components.
        new = DNF([[1, 4]])
        added = index.extend(new, existing_lineage=w1)
        assert len(added) == 1
        assert index.component_count() == 1
        merged = w1.or_(new)
        assert index.probability_w() == pytest.approx(
            brute_force_probability(merged, probabilities)
        )

    def test_extend_requires_existing_lineage_for_overlaps(self):
        w1 = DNF([[0, 1]])
        index = MVIndex(w1, {0: 0.5, 1: 0.5}, natural_order(range(2)))
        with pytest.raises(CompilationError, match="existing_lineage"):
            index.extend(DNF([[1, 2]]), probabilities={2: 0.5})

    def test_extend_rejects_probability_changes(self):
        w1 = DNF([[0, 1]])
        index = MVIndex(w1, {0: 0.5, 1: 0.5}, natural_order(range(2)))
        with pytest.raises(CompilationError, match="cannot change"):
            index.extend(DNF([[2]]), probabilities={0: 0.9, 2: 0.5})

    def test_extend_rejects_unknown_probabilities(self):
        w1 = DNF([[0, 1]])
        index = MVIndex(w1, {0: 0.5, 1: 0.5}, natural_order(range(2)))
        with pytest.raises(CompilationError, match="no probabilities"):
            index.extend(DNF([[7]]))

    def test_extend_matches_from_scratch_build(self):
        w1 = DNF([[2 * i, 2 * i + 1] for i in range(6)])
        extra = DNF([[12, 13], [13, 14]])
        merged = w1.or_(extra)
        probabilities = {v: 0.2 + (v % 5) / 10.0 for v in merged.variables()}
        order = natural_order(sorted(merged.variables()))

        extended = MVIndex(w1, {v: probabilities[v] for v in w1.variables()},
                           natural_order(sorted(w1.variables())))
        extended.extend(extra, probabilities=probabilities)
        scratch = MVIndex(merged, probabilities, order)
        assert extended.probability_w() == pytest.approx(scratch.probability_w(), abs=1e-12)
        query = DNF([[0], [13]])
        assert cc_mv_intersect(extended, query, probabilities) == pytest.approx(
            cc_mv_intersect(scratch, query, probabilities), abs=1e-12
        )


@st.composite
def random_q_and_w(draw):
    n_vars = draw(st.integers(min_value=2, max_value=9))
    w_clauses = [
        draw(st.sets(st.integers(min_value=0, max_value=n_vars - 1), min_size=1, max_size=3))
        for __ in range(draw(st.integers(min_value=1, max_value=4)))
    ]
    q_clauses = [
        draw(st.sets(st.integers(min_value=0, max_value=n_vars + 2), min_size=1, max_size=3))
        for __ in range(draw(st.integers(min_value=1, max_value=3)))
    ]
    probabilities = {
        v: draw(st.floats(min_value=-0.5, max_value=1.0, allow_nan=False))
        for v in range(n_vars + 3)
    }
    return DNF(w_clauses), DNF(q_clauses), probabilities


class TestIntersectionProperties:
    @given(random_q_and_w())
    @settings(max_examples=80, deadline=None)
    def test_both_algorithms_match_enumeration(self, case):
        w, q, probabilities = case
        w_probabilities = {v: probabilities[v] for v in w.variables()}
        index = MVIndex(w, w_probabilities, natural_order(sorted(w.variables())))
        expected = _conjunction_probability(q, w, probabilities)
        assert mv_intersect(index, q, probabilities) == pytest.approx(expected, abs=1e-9)
        assert cc_mv_intersect(index, q, probabilities) == pytest.approx(expected, abs=1e-9)
