"""Scale-out serving tests: hash ring, router, and the replica fleet.

Covers the issue's scale-out contract:

* consistent-hash routing — determinism, full coverage, and key stability
  when a replica dies (the ring is never rebuilt; dead slots are skipped);
* the cluster stats roll-up (``merge_stats``) — counters add, generation
  takes the floor (with ``generation_max`` as the frontier), percentiles
  merge count-weighted;
* router fan-out against live replicas: transport parity with the
  in-process facade, retry-on-transport-failure with no 5xx leaked, 503
  only when every replica is down;
* fleet fault paths over real forked processes: kill -9 mid-load with
  automatic restart, extend-while-serving broadcast keeping all replicas
  byte-identical with an in-process ``ProbDB.extend``, and replay of the
  extend log by restarted replicas;
* the CLI contract: ``repro serve --port 0 --replicas N`` prints the URL
  only after every replica passed its first health check;
* graceful drain: ``ProbServer.stop()`` must not hang on idle keep-alive
  connections and must wait for in-flight requests.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.dblp.config import DblpConfig
from repro.dblp.workload import build_mvdb
from repro.serving.dispatch import latency_summary, merge_stats
from repro.serving.fleet import ReplicaFleet
from repro.serving.router import HashRing, Router, serve_fleet
from repro.serving.server import ProbServer

GROUPS = 3
SEED = 0

QUERIES = [
    "Q(aid) :- Student(aid, year), Advisor(aid, aid1), Author(aid1, n1), "
    "n1 like '%Advisor 0%'",
    "Q(inst) :- Affiliation(aid, inst), Author(aid, n), n like '%Advisor 1%'",
    "Q :- Student(aid, year), Advisor(aid, aid1)",
]

#: Fast fleet knobs for tests — restarts must resolve in well under a second.
FAST = {"health_interval": 0.15, "restart_backoff": 0.05}


def _extender(spec):
    views = tuple(spec.get("views", ["V1", "V2", "V3"]))
    return build_mvdb(
        DblpConfig(group_count=spec.get("groups", GROUPS), seed=spec.get("seed", SEED)),
        include_views=views,
    ).mvdb


def _answers(result) -> str:
    return json.dumps(result.to_json()["answers"], sort_keys=True)


@pytest.fixture(scope="module")
def engine():
    workload = build_mvdb(DblpConfig(group_count=GROUPS, seed=SEED), include_views=("V1", "V2"))
    return repro.connect(workload.mvdb).engine


@pytest.fixture(scope="module")
def local_db():
    workload = build_mvdb(DblpConfig(group_count=GROUPS, seed=SEED), include_views=("V1", "V2"))
    return repro.connect(workload.mvdb)


# --------------------------------------------------------------------- ring
class TestHashRing:
    def test_deterministic_and_covering(self):
        ring = HashRing([0, 1, 2, 3])
        for key in ("a", "b", "some canonical query key", ""):
            walk = ring.order(key)
            assert walk == ring.order(key)
            assert sorted(walk) == [0, 1, 2, 3]

    def test_keys_spread_over_all_slots(self):
        ring = HashRing([0, 1, 2, 3])
        homes = {ring.order(f"key-{index}")[0] for index in range(200)}
        assert homes == {0, 1, 2, 3}

    def test_dead_slot_skipping_preserves_other_homes(self):
        # The ring is never rebuilt: skipping a dead slot must not move any
        # key whose home replica is still alive (the (K-1)/K guarantee).
        ring = HashRing([0, 1, 2])
        keys = [f"key-{index}" for index in range(100)]
        before = {key: ring.order(key) for key in keys}
        dead = 1
        for key in keys:
            survivors = [slot for slot in before[key] if slot != dead]
            if before[key][0] != dead:
                assert survivors[0] == before[key][0]
            assert [slot for slot in ring.order(key) if slot != dead] == survivors

    def test_single_slot(self):
        ring = HashRing([0])
        assert ring.order("anything") == [0]


# ----------------------------------------------------------------- roll-up
class TestMergeStats:
    def _doc(self, requests=10, generation=1, p50=2.0, count=10, rejected=0):
        return {
            "generation": generation,
            "workers": 2,
            "max_queue": 64,
            "queue_depth": 1,
            "in_flight": 1,
            "throughput": {
                "qps": 5.0,
                "lifetime_qps": 4.0,
                "requests_total": requests,
                "answers_total": requests,
            },
            "latency_ms": {
                "count": count, "p50_ms": p50, "p95_ms": p50 * 2, "p99_ms": p50 * 3,
                "mean_ms": p50, "max_ms": p50 * 4,
            },
            "admission": {
                "queue_depth": 1, "max_queue": 64, "rejected_total": rejected,
                "coalesced_total": 0,
            },
            "errors": {"total": 0, "responses_by_status": {"200": requests}},
            "cache": {
                tier: {"hits": 4, "misses": 6, "hit_ratio": 0.4, "entries": 3}
                for tier in ("string", "result", "lineage")
            },
            "uptime_s": 30.0,
        }

    def test_counters_add_and_generation_takes_floor(self):
        merged = merge_stats([self._doc(requests=10, generation=1),
                              self._doc(requests=30, generation=2)])
        assert merged["throughput"]["requests_total"] == 40
        assert merged["generation"] == 1
        assert merged["generation_max"] == 2
        assert merged["workers"] == 4
        assert merged["errors"]["responses_by_status"] == {"200": 40}
        assert merged["cache"]["string"]["hits"] == 8
        assert merged["cache"]["string"]["hit_ratio"] == pytest.approx(8 / 20)

    def test_latency_is_count_weighted(self):
        merged = merge_stats([self._doc(p50=1.0, count=10), self._doc(p50=4.0, count=30)])
        assert merged["latency_ms"]["p50_ms"] == pytest.approx(3.25)
        assert merged["latency_ms"]["count"] == 40
        assert merged["latency_ms"]["max_ms"] == pytest.approx(16.0)

    def test_empty_input_has_single_server_shape(self):
        merged = merge_stats([])
        assert merged["generation"] == 0
        assert merged["throughput"]["requests_total"] == 0
        assert merged["latency_ms"] == latency_summary([])
        assert set(merged["cache"]) == {"string", "result", "lineage"}


# ------------------------------------------------------------------- drain
class TestGracefulDrain:
    def test_stop_is_not_blocked_by_idle_keepalive_connections(self, engine):
        server = ProbServer(engine, workers=1).start()
        # An idle keep-alive connection parks a handler thread in readline;
        # with block_on_close unset, server_close() would join that thread
        # forever.  stop() must return promptly regardless.
        parked = socket.create_connection((server.host, server.port))
        try:
            start = time.monotonic()
            server.stop()
            assert time.monotonic() - start < 3.0
        finally:
            parked.close()

    def test_stop_waits_for_in_flight_requests(self, engine):
        server = ProbServer(engine, workers=1).start()
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        body = json.dumps({"query": QUERIES[0]})
        results = {}

        def slow_request():
            connection.request(
                "POST", "/v1/query", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            results["status"] = response.status
            response.read()

        requester = threading.Thread(target=slow_request)
        requester.start()
        deadline = time.monotonic() + 5.0
        while server.active_requests == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        server.stop()
        requester.join(timeout=10.0)
        connection.close()
        assert results.get("status") == 200
        assert server.active_requests == 0


# ------------------------------------------------- router over a live fleet
@pytest.fixture(scope="module")
def router(engine):
    router = serve_fleet(
        engine,
        replicas=2,
        extender=_extender,
        server_kwargs={"workers": 2, "max_queue": 32},
        health_interval=FAST["health_interval"],
    ).start()
    router.fleet.restart_backoff = FAST["restart_backoff"]
    yield router
    router.stop()


@pytest.fixture(scope="module")
def remote(router):
    return repro.connect_remote(router.url)


class TestRouterServing:
    @pytest.mark.parametrize("query", QUERIES)
    def test_transport_parity_through_the_router(self, local_db, remote, query):
        assert _answers(remote.query(query)) == _answers(local_db.query(query))

    def test_batch_parity(self, local_db, remote):
        wire = remote.query_batch(QUERIES)
        local = [local_db.query(query) for query in QUERIES]
        assert [_answers(r) for r in wire] == [_answers(r) for r in local]

    def test_healthz_reports_fleet(self, remote, router):
        health = remote.healthz()
        assert health["status"] == "ok"
        assert health["role"] == "router"
        assert health["replicas"] == 2
        assert health["replicas_alive"] == 2

    def test_cluster_stats_shape_and_rollup(self, remote, router):
        remote.query(QUERIES[0])
        stats = remote.stats()
        # Single-server document shape, so existing dashboards keep working.
        for section in ("throughput", "latency_ms", "admission", "errors", "cache"):
            assert section in stats
        assert stats["throughput"]["requests_total"] >= 1
        assert stats["generation_max"] >= stats["generation"]
        assert stats["router"]["replicas"] == 2
        assert stats["router"]["replicas_alive"] == 2

    def test_metrics_exposition_includes_fleet_gauges(self, remote):
        text = remote.metrics_text()
        assert "repro_requests_total" in text
        assert "repro_replicas 2" in text
        assert "repro_replicas_alive 2" in text
        assert "repro_replica_restarts_total" in text

    def test_affinity_same_query_same_replica(self, router):
        key = router.routing_key("/v1/query", json.dumps({"query": QUERIES[0]}).encode())
        rephrased = "Q(a) :- Student(a, y), Advisor(a, b), Author(b, n), n like '%Advisor 0%'"
        rekey = router.routing_key("/v1/query", json.dumps({"query": rephrased}).encode())
        assert key == rekey  # canonicalization: re-phrasings share a replica
        assert router.ring.order(key)[0] == router.ring.order(rekey)[0]

    def test_structured_errors_relay(self, router):
        connection = http.client.HTTPConnection(router.host, router.port, timeout=30)
        try:
            connection.request(
                "POST", "/v1/query", body=json.dumps({"query": "not a query ("}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = response.read()
            assert response.status == 400
            assert json.loads(payload)["error"]["type"] == "parse_error"
            # And the connection survives for the next request (keep-alive).
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            response.read()
            assert response.status == 200
        finally:
            connection.close()

    def test_unknown_path_and_wrong_method(self, router):
        connection = http.client.HTTPConnection(router.host, router.port, timeout=30)
        try:
            connection.request("GET", "/nope")
            response = connection.getresponse()
            assert response.status == 404
            assert json.loads(response.read())["error"]["type"] == "not_found"
            connection.request("GET", "/v1/query")
            response = connection.getresponse()
            assert response.status == 405
            assert json.loads(response.read())["error"]["type"] == "method_not_allowed"
        finally:
            connection.close()


class TestFleetFaultPaths:
    def test_kill_dash_nine_mid_load_leaks_no_5xx(self, router, remote, local_db):
        fleet = router.fleet
        victim = fleet._slots[0].process.pid
        stop = threading.Event()
        statuses: list[int] = []

        def hammer():
            connection = http.client.HTTPConnection(router.host, router.port, timeout=30)
            body = json.dumps({"query": QUERIES[0]})
            while not stop.is_set():
                try:
                    connection.request(
                        "POST", "/v1/query", body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    response.read()
                    statuses.append(response.status)
                except (OSError, http.client.HTTPException):
                    connection.close()
                    connection = http.client.HTTPConnection(
                        router.host, router.port, timeout=30
                    )
            connection.close()

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.2)
        os.kill(victim, signal.SIGKILL)
        time.sleep(1.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert statuses, "the load loop never completed a request"
        bad = [status for status in statuses if status >= 500]
        assert not bad, f"router leaked {len(bad)} 5xx during the kill window"
        # The monitor must restart the dead replica (fast knobs: well under 10s).
        deadline = time.monotonic() + 10.0
        while len(fleet.alive_slots()) < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert len(fleet.alive_slots()) == 2
        assert fleet.restarts_total >= 1
        # And answers stay byte-identical after the restart.
        assert _answers(remote.query(QUERIES[1])) == _answers(local_db.query(QUERIES[1]))

    def test_counters_stay_monotonic_across_restart(self, remote, router):
        before = remote.stats()["throughput"]["requests_total"]
        fleet = router.fleet
        restarts = fleet.restarts_total
        os.kill(fleet._slots[1].process.pid, signal.SIGKILL)
        # The alive flags update when the monitor notices the death, so the
        # restart counter (bumped by the re-fork) is the barrier to wait on.
        deadline = time.monotonic() + 10.0
        while fleet.restarts_total == restarts and time.monotonic() < deadline:
            time.sleep(0.05)
        while len(fleet.alive_slots()) < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert len(fleet.alive_slots()) == 2
        # The dead incarnation's counters fold into the retired baseline.
        assert remote.stats()["throughput"]["requests_total"] >= before

    def test_extend_broadcast_keeps_replicas_byte_identical(self, router, remote):
        # In-process reference: same base data, extended the same way.
        reference = repro.connect(
            build_mvdb(DblpConfig(group_count=GROUPS, seed=SEED),
                       include_views=("V1", "V2")).mvdb
        )
        for query in QUERIES:
            reference.query(query)
        added = remote.extend({"views": ["V1", "V2", "V3"], "groups": GROUPS, "seed": SEED})
        reference.extend(build_mvdb(DblpConfig(group_count=GROUPS, seed=SEED)).mvdb)
        assert added >= 1
        stats = remote.stats()
        assert stats["generation"] == stats["generation_max"], (
            "replicas disagree on the invalidation epoch after the broadcast"
        )
        # Every replica must now answer with the extended view set: query
        # repeatedly so the consistent hash touches both replicas via the
        # distinct canonical keys of the workload.
        for query in QUERIES:
            assert _answers(remote.query(query)) == _answers(reference.query(query))

    def test_restarted_replica_replays_the_extend_log(self, router, remote):
        # Depends on the broadcast test having extended the fleet: the log
        # is non-empty, so a kill -9 now exercises replay-on-restart.
        fleet = router.fleet
        assert fleet.extend_log_len >= 1
        os.kill(fleet._slots[0].process.pid, signal.SIGKILL)
        deadline = time.monotonic() + 15.0
        while len(fleet.alive_slots()) < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert len(fleet.alive_slots()) == 2
        stats = remote.stats()
        assert stats["generation"] == stats["generation_max"], (
            "the restarted replica did not replay the extend log"
        )
        assert fleet.applied_len(0) == fleet.extend_log_len


class TestIngestBroadcast:
    """Streaming appends through the router: compile once, ship the artifact.

    Runs after the extend-broadcast tests on purpose: the mutation log
    already holds an extend entry, so these appends exercise a *mixed*
    log — exactly what a restarted follower must replay mid-ingest.
    """

    FACTS = {
        "Author": [[980001, "Ingest Author 980001"]],
        "Student": [[[980001, 2019], 2.0]],
    }

    def _reference(self):
        # Mirror the fleet's mutation history exactly: V1+V2 base, extended
        # to the full view set (same prepare path as the leader), then the
        # same append.  Same history => bit-identical answers.
        reference = repro.connect(
            build_mvdb(DblpConfig(group_count=GROUPS, seed=SEED),
                       include_views=("V1", "V2")).mvdb
        )
        reference.extend(build_mvdb(DblpConfig(group_count=GROUPS, seed=SEED)).mvdb)
        reference.append_facts(self.FACTS)
        return reference

    def test_append_broadcast_keeps_replicas_in_lock_step(self, router, remote):
        log_before = router.fleet.extend_log_len
        added = remote.append_facts(self.FACTS)
        assert added == 2
        assert router.fleet.extend_log_len == log_before + 1
        stats = remote.stats()
        assert stats["generation"] == stats["generation_max"], (
            "replicas disagree on the invalidation epoch after the append"
        )
        reference = self._reference()
        for query in QUERIES:
            assert _answers(remote.query(query)) == _answers(reference.query(query))

    def test_follower_restart_mid_ingest_replays_the_mixed_log(self, router, remote):
        # Depends on the append test: the log now mixes extend + append
        # entries, so a kill -9 exercises full mixed replay on restart.
        fleet = router.fleet
        assert fleet.extend_log_len >= 2
        os.kill(fleet._slots[1].process.pid, signal.SIGKILL)
        deadline = time.monotonic() + 15.0
        while len(fleet.alive_slots()) < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert len(fleet.alive_slots()) == 2
        assert fleet.applied_len(1) == fleet.extend_log_len
        stats = remote.stats()
        assert stats["generation"] == stats["generation_max"], (
            "the restarted replica did not replay the append entries"
        )
        reference = self._reference()
        for query in QUERIES:
            assert _answers(remote.query(query)) == _answers(reference.query(query))


class TestRouterAllReplicasDown:
    def test_503_only_when_every_replica_is_down(self, engine):
        fleet = ReplicaFleet(
            engine, 1, server_kwargs={"workers": 1}, health_interval=30.0
        )
        router = Router(fleet)
        router.start()
        try:
            url = router.url
            remote = repro.connect_remote(url)
            assert remote.query(QUERIES[2]) is not None
            # Take the only replica down hard and mark it dead so the
            # router stops routing to it (the monitor is parked on a slow
            # interval on purpose — this tests the router, not the monitor).
            fleet._slots[0].process.kill()
            fleet._slots[0].process.join()
            fleet._slots[0].alive = False
            connection = http.client.HTTPConnection(router.host, router.port, timeout=30)
            try:
                connection.request(
                    "POST", "/v1/query", body=json.dumps({"query": QUERIES[2]}),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = response.read()
                assert response.status == 503
                assert json.loads(payload)["error"]["type"] == "serving_error"
                connection.request("GET", "/healthz")
                health = connection.getresponse()
                body = json.loads(health.read())
                assert health.status == 503
                assert body["status"] == "down"
            finally:
                connection.close()
        finally:
            router.stop()


class TestServeCliFleet:
    def test_port_zero_prints_url_only_after_health(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--replicas", "2", "--groups", str(GROUPS), "--workers", "2",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            url = None
            for _ in range(2):
                line = proc.stdout.readline()
                if line.startswith("listening on "):
                    url = line.split()[2]
            assert url, "serve never printed its URL"
            # The URL line is the all-healthy barrier: the fleet must
            # answer immediately, no retry loop needed.
            remote = repro.connect_remote(url)
            health = remote.healthz()
            assert health["status"] == "ok"
            assert health["replicas_alive"] == 2
            assert _answers(remote.query(QUERIES[2]))
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
