"""Tests for CQ/UCQ evaluation with lineage extraction over a database."""

import pytest

from repro.db import Database
from repro.indb import TupleIndependentDatabase, probability_to_weight
from repro.query import (
    answer_probabilities,
    boolean_lineage,
    evaluate_ucq,
    parse_query,
    parse_rule,
)


@pytest.fixture
def figure3_indb():
    """The example of Fig. 3: R = {a1, a2}, S = {(a1,b1),(a1,b2),(a2,b3),(a2,b4)}."""
    indb = TupleIndependentDatabase()
    indb.add_probabilistic_table(
        "R", ["a"], [((f"a{i}",), probability_to_weight(0.5)) for i in (1, 2)]
    )
    indb.add_probabilistic_table(
        "S",
        ["a", "b"],
        [
            (("a1", "b1"), probability_to_weight(0.3)),
            (("a1", "b2"), probability_to_weight(0.4)),
            (("a2", "b3"), probability_to_weight(0.5)),
            (("a2", "b4"), probability_to_weight(0.6)),
        ],
    )
    return indb


class TestDeterministicEvaluation:
    def test_join(self):
        db = Database()
        db.create_table("R", ["a"], [(1,), (2,)])
        db.create_table("S", ["a", "b"], [(1, 10), (2, 20), (3, 30)])
        result = evaluate_ucq(parse_query("Q(x, y) :- R(x), S(x, y)"), db)
        assert sorted(result.answers()) == [(1, 10), (2, 20)]

    def test_comparison_filters(self):
        db = Database()
        db.create_table("S", ["a", "b"], [(1, 10), (2, 20)])
        result = evaluate_ucq(parse_query("Q(x) :- S(x, y), y > 15"), db)
        assert result.answers() == [(2,)]

    def test_like_filter(self):
        db = Database()
        db.create_table("Author", ["aid", "name"], [(1, "Sam Madden"), (2, "Dan Suciu")])
        result = evaluate_ucq(parse_query("Q(a) :- Author(a, n), n like '%Madden%'"), db)
        assert result.answers() == [(1,)]

    def test_boolean_query_true_and_false(self):
        db = Database()
        db.create_table("R", ["a"], [(1,)])
        assert evaluate_ucq(parse_query("Q :- R(x)"), db).boolean_true
        db2 = Database()
        db2.create_table("R", ["a"])
        assert not evaluate_ucq(parse_query("Q :- R(x)"), db2).boolean_true

    def test_repeated_variable_join(self):
        db = Database()
        db.create_table("E", ["a", "b"], [(1, 1), (1, 2)])
        result = evaluate_ucq(parse_query("Q(x) :- E(x, x)"), db)
        assert result.answers() == [(1,)]

    def test_constant_in_atom(self):
        db = Database()
        db.create_table("E", ["a", "b"], [(1, 7), (2, 8)])
        result = evaluate_ucq(parse_query("Q(x) :- E(x, 7)"), db)
        assert result.answers() == [(1,)]

    def test_ucq_union_of_answers(self):
        db = Database()
        db.create_table("R", ["a"], [(1,)])
        db.create_table("S", ["a"], [(2,)])
        result = evaluate_ucq(parse_query("Q(x) :- R(x)\nQ(x) :- S(x)"), db)
        assert sorted(result.answers()) == [(1,), (2,)]

    def test_unbound_comparison_variable_raises(self):
        db = Database()
        db.create_table("R", ["a"], [(1,)])
        # 'y' never bound: the CQ constructor already rejects it.
        with pytest.raises(Exception):
            parse_rule("Q(x) :- R(x), y < 3")

    def test_deterministic_lineage_is_true(self):
        db = Database()
        db.create_table("R", ["a"], [(1,)])
        result = evaluate_ucq(parse_query("Q(x) :- R(x)"), db)
        assert result.lineage((1,)).is_true


class TestLineageExtraction:
    def test_figure3_lineage(self, figure3_indb):
        """Lineage of Q :- R(x), S(x,y) must be X1Y1 ∨ X1Y2 ∨ X2Y3 ∨ X2Y4."""
        query = parse_query("Q :- R(x), S(x, y)")
        lineage = boolean_lineage(query, figure3_indb.database, figure3_indb)
        assert len(lineage) == 4
        assert all(len(clause) == 2 for clause in lineage)
        x1 = figure3_indb.variable_for("R", ("a1",))
        y1 = figure3_indb.variable_for("S", ("a1", "b1"))
        assert frozenset({x1, y1}) in lineage.clauses

    def test_lineage_probability_matches_closed_form(self, figure3_indb):
        query = parse_query("Q :- R(x), S(x, y)")
        probability = figure3_indb.query_probability(query)
        # P = 1 - (1 - 0.5(1-(1-.3)(1-.4))) (1 - 0.5(1-(1-.5)(1-.6)))
        p_a1 = 0.5 * (1 - 0.7 * 0.6)
        p_a2 = 0.5 * (1 - 0.5 * 0.4)
        assert probability == pytest.approx(1 - (1 - p_a1) * (1 - p_a2))

    def test_non_boolean_answers_probability(self, figure3_indb):
        query = parse_query("Q(x) :- R(x), S(x, y)")
        answers = figure3_indb.query_answers(query)
        assert answers[("a1",)] == pytest.approx(0.5 * (1 - 0.7 * 0.6))
        assert answers[("a2",)] == pytest.approx(0.5 * (1 - 0.5 * 0.4))

    def test_missing_answer_lineage_is_false(self, figure3_indb):
        query = parse_query("Q(x) :- R(x), S(x, y)")
        result = evaluate_ucq(query, figure3_indb.database, figure3_indb)
        assert result.lineage(("zz",)).is_false

    def test_certain_tuples_do_not_appear_in_lineage(self):
        indb = TupleIndependentDatabase()
        indb.add_probabilistic_table("R", ["a"], [((1,), float("inf"))])
        indb.add_probabilistic_table("S", ["a"], [((1,), 1.0)])
        lineage = indb.lineage_of(parse_query("Q :- R(x), S(x)"))
        assert len(lineage.variables()) == 1

    def test_answer_probabilities_helper(self, figure3_indb):
        query = parse_query("Q(x) :- R(x), S(x, y)")
        result = evaluate_ucq(query, figure3_indb.database, figure3_indb)
        probs = answer_probabilities(result, figure3_indb.probabilities())
        enumerated = answer_probabilities(
            result, figure3_indb.probabilities(), method="enumeration"
        )
        for answer, value in probs.items():
            assert value == pytest.approx(enumerated[answer])


class TestPossibleWorlds:
    def test_world_count_and_total_probability(self):
        indb = TupleIndependentDatabase()
        indb.add_probabilistic_table("R", ["a"], [((1,), 1.0), ((2,), 3.0)])
        worlds = list(indb.possible_worlds())
        assert len(worlds) == 4
        assert sum(weight for __, weight in worlds) == pytest.approx(1.0)

    def test_world_database_materialisation(self):
        indb = TupleIndependentDatabase()
        indb.add_deterministic_table("D", ["a"], [(9,)])
        indb.add_probabilistic_table("R", ["a"], [((1,), 1.0)])
        var = indb.variable_for("R", (1,))
        with_tuple = indb.world_database({var: True})
        without_tuple = indb.world_database({var: False})
        assert (1,) in with_tuple.table("R")
        assert (1,) not in without_tuple.table("R")
        assert (9,) in with_tuple.table("D")

    def test_query_probability_matches_world_semantics(self):
        indb = TupleIndependentDatabase()
        indb.add_probabilistic_table("R", ["a"], [((1,), 1.0)])
        indb.add_probabilistic_table("S", ["a", "b"], [((1, 2), 2.0)])
        query = parse_query("Q :- R(x), S(x, y)")
        by_lineage = indb.query_probability(query)
        total = 0.0
        for assignment, weight in indb.possible_worlds():
            world = indb.world_database(assignment)
            if evaluate_ucq(query, world).boolean_true:
                total += weight
        assert by_lineage == pytest.approx(total)
