"""Unit tests for terms, atoms, conjunctive queries, UCQs and the parser."""

import pytest

from repro.errors import ParseError, QueryError
from repro.query import (
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    UCQ,
    Variable,
    as_ucq,
    is_constant,
    is_variable,
    make_term,
    parse_query,
    parse_rule,
)


class TestTerms:
    def test_make_term_identifier_is_variable(self):
        assert make_term("aid") == Variable("aid")
        assert is_variable(make_term("aid"))

    def test_make_term_value_is_constant(self):
        assert make_term(5) == Constant(5)
        assert is_constant(make_term("hello world"))

    def test_make_term_passes_through(self):
        constant = Constant("x")
        assert make_term(constant) is constant


class TestAtom:
    def test_variables_and_arity(self):
        atom = Atom("R", ["x", Constant("a"), "x"])
        assert atom.arity == 3
        assert atom.variables() == [Variable("x"), Variable("x")]

    def test_substitute_and_ground(self):
        atom = Atom("R", ["x", "y"])
        ground = atom.substitute({Variable("x"): 1, Variable("y"): 2})
        assert ground.is_ground()
        assert ground.ground_row() == (1, 2)

    def test_ground_row_on_non_ground_raises(self):
        with pytest.raises(QueryError):
            Atom("R", ["x"]).ground_row()


class TestComparison:
    def test_numeric_operators(self):
        comparison = Comparison("x", "<", Constant(5))
        assert comparison.evaluate({Variable("x"): 3}) is True
        assert comparison.evaluate({Variable("x"): 7}) is False

    def test_inequality_aliases(self):
        assert Comparison("x", "<>", "y").evaluate({Variable("x"): 1, Variable("y"): 2})
        assert not Comparison("x", "!=", "y").evaluate({Variable("x"): 1, Variable("y"): 1})

    def test_like(self):
        comparison = Comparison("n", "like", Constant("%Madden%"))
        assert comparison.evaluate({Variable("n"): "Samuel Madden"}) is True
        assert comparison.evaluate({Variable("n"): "Dan Suciu"}) is False

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison("x", "~~", "y")


class TestConjunctiveQuery:
    def test_boolean_query(self):
        cq = ConjunctiveQuery([], [Atom("R", ["x"])])
        assert cq.is_boolean

    def test_head_must_occur_in_body(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(["z"], [Atom("R", ["x"])])

    def test_comparison_variables_must_be_bound(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([], [Atom("R", ["x"])], [Comparison("y", "<", Constant(1))])

    def test_needs_at_least_one_atom(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([], [])

    def test_bind_head_produces_boolean_query(self):
        cq = ConjunctiveQuery(["x"], [Atom("R", ["x", "y"])])
        bound = cq.bind_head([7])
        assert bound.is_boolean
        assert bound.atoms[0].terms[0] == Constant(7)

    def test_self_join_detection(self):
        cq = ConjunctiveQuery([], [Atom("R", ["x"]), Atom("R", ["y"])])
        assert cq.has_self_join()

    def test_relations_and_variables(self):
        cq = ConjunctiveQuery(["x"], [Atom("R", ["x"]), Atom("S", ["x", "y"])])
        assert cq.relations() == {"R", "S"}
        assert cq.existential_variables() == {Variable("y")}


class TestUCQ:
    def test_heads_must_match(self):
        q1 = ConjunctiveQuery(["x"], [Atom("R", ["x"])])
        q2 = ConjunctiveQuery(["y"], [Atom("S", ["y"])])
        with pytest.raises(QueryError):
            UCQ([q1, q2])

    def test_union_and_iteration(self):
        q1 = ConjunctiveQuery([], [Atom("R", ["x"])])
        q2 = ConjunctiveQuery([], [Atom("S", ["x"])])
        union = as_ucq(q1).union(q2)
        assert len(union) == 2
        assert union.relations() == {"R", "S"}

    def test_bind_head(self):
        q1 = ConjunctiveQuery(["x"], [Atom("R", ["x"])])
        q2 = ConjunctiveQuery(["x"], [Atom("S", ["x", "y"])])
        bound = UCQ([q1, q2]).bind_head([3])
        assert bound.is_boolean


class TestParser:
    def test_parse_simple_rule(self):
        cq = parse_rule("Q(x) :- R(x, y), S(y)")
        assert cq.name == "Q"
        assert [a.relation for a in cq.atoms] == ["R", "S"]
        assert cq.head == (Variable("x"),)

    def test_parse_constants(self):
        cq = parse_rule("Q() :- R(x, 'Sam Madden'), S(x, 3), T(x, 2.5)")
        assert cq.atoms[0].terms[1] == Constant("Sam Madden")
        assert cq.atoms[1].terms[1] == Constant(3)
        assert cq.atoms[2].terms[1] == Constant(2.5)

    def test_parse_comparisons(self):
        cq = parse_rule("Q(x) :- R(x, y), y > 2004, x <> y")
        assert len(cq.comparisons) == 2
        assert cq.comparisons[0].op == ">"
        assert cq.comparisons[1].op == "<>"

    def test_parse_like(self):
        cq = parse_rule("Q(a) :- Author(a, n), n like '%Madden%'")
        assert cq.comparisons[0].op == "like"

    def test_parse_boolean_head_without_parens(self):
        cq = parse_rule("Q :- R(x)")
        assert cq.is_boolean

    def test_parse_ucq_from_multiline_string(self):
        ucq = parse_query("Q(x) :- R(x)\nQ(x) :- S(x, y)")
        assert len(ucq) == 2

    def test_parse_ucq_mismatched_heads_rejected(self):
        with pytest.raises(ParseError):
            parse_query(["Q(x) :- R(x)", "P(x) :- S(x)"])

    def test_parse_error_on_garbage(self):
        with pytest.raises(ParseError):
            parse_rule("Q(x) :- R(x")

    def test_parse_example_from_paper(self):
        text = (
            "Q(aid) :- Student(aid, year), Advisor(aid, aid1), Author(aid, n), "
            "Author(aid1, n1), n1 like '%Madden%'"
        )
        cq = parse_rule(text)
        assert len(cq.atoms) == 4
        assert len(cq.comparisons) == 1
