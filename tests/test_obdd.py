"""Tests for the OBDD manager, variable orders, and ConOBDD construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompilationError
from repro.indb import TupleIndependentDatabase
from repro.lineage import DNF, brute_force_probability
from repro.obdd import (
    ONE,
    ObddManager,
    VariableOrder,
    ZERO,
    build_obdd,
    clause_obdd,
    connected_components,
    dump_dot,
    iter_paths,
    natural_order,
    order_from_permutations,
)


class TestManager:
    def test_terminals(self):
        manager = ObddManager()
        assert manager.is_terminal(ZERO)
        assert manager.is_terminal(ONE)

    def test_reduction_low_equals_high(self):
        manager = ObddManager()
        assert manager.make_node(0, ONE, ONE) == ONE

    def test_unique_table_shares_nodes(self):
        manager = ObddManager()
        a = manager.make_node(0, ZERO, ONE)
        b = manager.make_node(0, ZERO, ONE)
        assert a == b

    def test_ordering_enforced(self):
        manager = ObddManager()
        deep = manager.make_node(1, ZERO, ONE)
        with pytest.raises(CompilationError):
            manager.make_node(2, deep, ONE)

    def test_apply_or_and(self):
        manager = ObddManager()
        x = manager.variable(0)
        y = manager.variable(1)
        both = manager.apply_and(x, y)
        either = manager.apply_or(x, y)
        assert manager.evaluate(both, {0: True, 1: True})
        assert not manager.evaluate(both, {0: True, 1: False})
        assert manager.evaluate(either, {0: False, 1: True})
        assert not manager.evaluate(either, {0: False, 1: False})

    def test_negate_is_involution(self):
        manager = ObddManager()
        x = manager.variable(0)
        y = manager.variable(1)
        f = manager.apply_or(x, y)
        assert manager.negate(manager.negate(f)) == f
        assert manager.evaluate(manager.negate(f), {0: False, 1: False})

    def test_restrict(self):
        manager = ObddManager()
        x = manager.variable(0)
        y = manager.variable(1)
        f = manager.apply_and(x, y)
        assert manager.restrict(f, 0, True) == y
        assert manager.restrict(f, 0, False) == ZERO

    def test_probability_shannon(self):
        manager = ObddManager()
        x = manager.variable(0)
        y = manager.variable(1)
        f = manager.apply_or(x, y)
        probability = manager.probability(f, {0: 0.5, 1: 0.5})
        assert probability == pytest.approx(0.75)

    def test_probability_with_negative_values(self):
        manager = ObddManager()
        x = manager.variable(0)
        y = manager.variable(1)
        f = manager.apply_and(x, y)
        assert manager.probability(f, {0: -0.5, 1: 0.4}) == pytest.approx(-0.2)

    def test_substitute_terminal_concatenation(self):
        manager = ObddManager()
        first = clause_obdd(manager, [0, 1])
        second = clause_obdd(manager, [2, 3])
        concatenated = manager.apply_or(first, second)
        by_substitution = manager.substitute_terminal(first, ZERO, second)
        assert concatenated == by_substitution

    def test_size_and_width(self):
        manager = ObddManager()
        f = clause_obdd(manager, [0, 1, 2])
        assert manager.size(f) == 3
        assert manager.width(f) == 1

    def test_dump_dot_and_paths(self):
        manager = ObddManager()
        f = clause_obdd(manager, [0, 1])
        dot = dump_dot(manager, f)
        assert "digraph" in dot
        terminals = {terminal for __, terminal in iter_paths(manager, f)}
        assert terminals == {ZERO, ONE}


class TestVariableOrder:
    def test_level_roundtrip(self):
        order = VariableOrder([10, 5, 7])
        assert order.level_of(10) == 0
        assert order.variable_at(2) == 7
        assert len(order) == 3

    def test_duplicate_rejected(self):
        with pytest.raises(CompilationError):
            VariableOrder([1, 1])

    def test_unknown_variable_raises(self):
        order = VariableOrder([1])
        with pytest.raises(CompilationError):
            order.level_of(9)

    def test_extend_appends_new_variables(self):
        order = VariableOrder([1, 2]).extend([2, 3])
        assert order.level_of(3) == 2

    def test_natural_order(self):
        order = natural_order([5, 1, 3])
        assert order.variables() == [1, 3, 5]

    def test_order_from_permutations_matches_figure3(self):
        """Schema R(A), S(A,B) with π_R=(A), π_S=(A,B) gives X1,Y1,Y2,X2,Y3,Y4."""
        indb = TupleIndependentDatabase()
        indb.add_probabilistic_table("R", ["a"], [(("a1",), 1.0), (("a2",), 1.0)])
        indb.add_probabilistic_table(
            "S",
            ["a", "b"],
            [
                (("a1", "b1"), 1.0),
                (("a1", "b2"), 1.0),
                (("a2", "b3"), 1.0),
                (("a2", "b4"), 1.0),
            ],
        )
        order = order_from_permutations(indb)
        ordered_tuples = [indb.tuple_of(v) for v in order.variables()]
        assert ordered_tuples == [
            ("R", ("a1",)),
            ("S", ("a1", "b1")),
            ("S", ("a1", "b2")),
            ("R", ("a2",)),
            ("S", ("a2", "b3")),
            ("S", ("a2", "b4")),
        ]

    def test_order_from_permutations_custom_permutation(self):
        indb = TupleIndependentDatabase()
        indb.add_probabilistic_table("S", ["a", "b"], [((1, 9), 1.0), ((2, 3), 1.0)])
        order = order_from_permutations(indb, permutations={"S": ["b", "a"]})
        first = indb.tuple_of(order.variable_at(0))
        assert first == ("S", (2, 3))


class TestConstruction:
    def test_connected_components(self):
        components = connected_components(DNF([[1, 2], [2, 3], [4]]).clauses)
        sizes = sorted(len(component) for component in components)
        assert sizes == [1, 2]

    def test_concat_and_synthesis_agree(self):
        formula = DNF([[1, 2], [1, 3], [4, 5], [6]])
        order = natural_order(formula.variables())
        concat = build_obdd(formula, order, method="concat")
        synthesis = build_obdd(formula, order, method="synthesis")
        probabilities = {v: 0.3 + 0.05 * v for v in formula.variables()}
        assert concat.probability(probabilities) == pytest.approx(
            synthesis.probability(probabilities)
        )
        assert concat.size == synthesis.size

    def test_concat_uses_fewer_apply_steps(self):
        formula = DNF([[2 * i, 2 * i + 1] for i in range(50)])
        order = natural_order(formula.variables())
        concat = build_obdd(formula, order, method="concat")
        synthesis = build_obdd(formula, order, method="synthesis")
        assert concat.manager.apply_steps < synthesis.manager.apply_steps

    def test_inversion_free_obdd_width_is_constant(self):
        """Independent clauses along the order give width 1 (Proposition 2)."""
        formula = DNF([[3 * i, 3 * i + 1, 3 * i + 2] for i in range(20)])
        order = natural_order(formula.variables())
        compiled = build_obdd(formula, order, method="concat")
        assert compiled.width <= 2
        assert compiled.size <= 3 * 20 + 2

    def test_probability_matches_brute_force(self):
        formula = DNF([[1, 2], [2, 3], [4]])
        order = natural_order(formula.variables())
        compiled = build_obdd(formula, order, method="concat")
        probabilities = {1: 0.2, 2: 0.7, 3: 0.4, 4: -0.3}
        assert compiled.probability(probabilities) == pytest.approx(
            brute_force_probability(formula, probabilities)
        )

    def test_true_and_false_formulas(self):
        order = natural_order([])
        assert build_obdd(DNF.true(), order).root == ONE
        assert build_obdd(DNF.false(), order).root == ZERO

    def test_missing_variable_in_order_raises(self):
        with pytest.raises(CompilationError):
            build_obdd(DNF([[1]]), natural_order([2]))

    def test_negate_compiled(self):
        formula = DNF([[1], [2]])
        order = natural_order([1, 2])
        compiled = build_obdd(formula, order)
        negated = compiled.negate()
        probabilities = {1: 0.5, 2: 0.25}
        assert negated.probability(probabilities) == pytest.approx(
            1 - compiled.probability(probabilities)
        )


class TestMultiWayApply:
    def test_or_multi_equals_pairwise(self):
        manager = ObddManager()
        roots = [clause_obdd(manager, [i, i + 3]) for i in range(3)]
        folded = roots[0]
        for root in roots[1:]:
            folded = manager.apply_or(folded, root)
        assert manager.apply_or_multi(roots) == folded

    def test_and_multi_equals_pairwise(self):
        manager = ObddManager()
        roots = [clause_obdd(manager, [i]) for i in range(4)]
        folded = roots[0]
        for root in roots[1:]:
            folded = manager.apply_and(folded, root)
        assert manager.apply_and_multi(roots) == folded

    def test_identities_and_absorbing_terminals(self):
        manager = ObddManager()
        x = manager.variable(0)
        assert manager.apply_or_multi([]) == ZERO
        assert manager.apply_and_multi([]) == ONE
        assert manager.apply_or_multi([ZERO, x, ZERO]) == x
        assert manager.apply_and_multi([ONE, x]) == x
        assert manager.apply_or_multi([x, ONE]) == ONE
        assert manager.apply_and_multi([x, ZERO]) == ZERO
        assert manager.apply_or_multi([x, x, x]) == x

    def test_conjunction_chain_matches_make_node_fold(self):
        manager = ObddManager()
        by_chain = manager.conjunction_chain([4, 1, 7])
        node = ONE
        for level in (7, 4, 1):
            node = manager.make_node(level, ZERO, node)
        assert by_chain == node

    def test_conjunction_chain_rejects_duplicates(self):
        from repro.errors import CompilationError as Error

        manager = ObddManager()
        with pytest.raises(Error):
            manager.conjunction_chain([2, 2])


class TestDeepLineages:
    """Regression: deep OBDDs previously overflowed the recursion limit.

    The seed kernel recursed to the depth of the OBDD in apply, negate,
    substitution and probability; a lineage over a few thousand variables
    blew the default interpreter limit (or needed ``sys.setrecursionlimit``
    escapes).  The iterative kernel must compile and evaluate them with the
    interpreter limit untouched.
    """

    VARIABLES = 6000

    def test_deep_single_clause_chain(self):
        import math
        import sys

        limit = sys.getrecursionlimit()
        formula = DNF([list(range(self.VARIABLES))])
        order = natural_order(range(self.VARIABLES))
        compiled = build_obdd(formula, order, method="concat")
        assert compiled.size == self.VARIABLES
        assert compiled.width == 1
        probabilities = {v: 0.999 for v in range(self.VARIABLES)}
        expected = math.exp(self.VARIABLES * math.log(0.999))
        assert compiled.probability(probabilities) == pytest.approx(expected, rel=1e-9)
        negated = compiled.negate()
        assert negated.probability(probabilities) == pytest.approx(1 - expected, rel=1e-9)
        assert sys.getrecursionlimit() == limit

    def test_deep_independent_clause_concatenation(self):
        import sys

        limit = sys.getrecursionlimit()
        formula = DNF([[2 * i, 2 * i + 1] for i in range(self.VARIABLES // 2)])
        order = natural_order(range(self.VARIABLES))
        compiled = build_obdd(formula, order, method="concat")
        assert compiled.size == self.VARIABLES
        # Satisfied by making any one pair true, falsified by breaking every pair.
        assert compiled.manager.evaluate(compiled.root, {0: True, 1: True})
        assert not compiled.manager.evaluate(
            compiled.root, {level: level % 2 == 0 for level in range(self.VARIABLES)}
        )
        compiled.probability({v: 0.5 for v in range(self.VARIABLES)})
        assert sys.getrecursionlimit() == limit

    def test_deep_shared_variable_chain(self):
        import sys

        limit = sys.getrecursionlimit()
        count = self.VARIABLES
        formula = DNF([[i, i + 1] for i in range(count - 1)])
        order = natural_order(range(count))
        compiled = build_obdd(formula, order, method="concat")
        assert compiled.size >= count - 1
        assert compiled.manager.evaluate(compiled.root, {5: True, 6: True})
        assert not compiled.manager.evaluate(
            compiled.root, {level: level % 2 == 0 for level in range(count)}
        )
        assert sys.getrecursionlimit() == limit


@st.composite
def random_dnf_and_order(draw):
    n_vars = draw(st.integers(min_value=1, max_value=8))
    n_clauses = draw(st.integers(min_value=1, max_value=6))
    clauses = [
        draw(st.sets(st.integers(min_value=0, max_value=n_vars - 1), min_size=1, max_size=3))
        for __ in range(n_clauses)
    ]
    permutation = draw(st.permutations(list(range(n_vars))))
    probabilities = {
        v: draw(st.floats(min_value=-0.5, max_value=1.0, allow_nan=False)) for v in range(n_vars)
    }
    return DNF(clauses), VariableOrder(permutation), probabilities


class TestObddAgainstEnumeration:
    @given(random_dnf_and_order())
    @settings(max_examples=100, deadline=None)
    def test_obdd_probability_equals_enumeration(self, case):
        formula, order, probabilities = case
        compiled = build_obdd(formula, order, method="concat")
        expected = brute_force_probability(formula, probabilities)
        assert compiled.probability(probabilities) == pytest.approx(expected, abs=1e-9)

    @given(random_dnf_and_order())
    @settings(max_examples=60, deadline=None)
    def test_methods_build_identical_obdds(self, case):
        formula, order, __ = case
        manager = ObddManager()
        concat_root = build_obdd(formula, order, manager=manager, method="concat").root
        synthesis_root = build_obdd(formula, order, manager=manager, method="synthesis").root
        assert concat_root == synthesis_root
