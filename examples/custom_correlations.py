"""Modelling custom correlations with MarkoViews: a record-linkage flavoured example.

A small "same-person" resolution scenario:

* ``Match(id1, id2)`` is a probabilistic table of candidate matches between two
  user registries, with a weight from a (fictitious) string-similarity model;
* a denial MarkoView asserts that a record can match at most one record of the
  other registry (weight 0: hard constraint);
* a positive MarkoView boosts pairs of matches that share the same e-mail
  domain (weight > 1: positive correlation).

The example shows the three evaluation paths agreeing (MV-index, online OBDD,
Shannon expansion) and compares against the MC-SAT baseline of the MLN view of
the same database.

Run with::

    python examples/custom_correlations.py
"""

from repro.core import MVDB, MVQueryEngine, MarkoView
from repro.mln import McSatSampler, mln_from_mvdb
from repro.query import parse_query


def build_mvdb() -> MVDB:
    mvdb = MVDB()
    # Candidate matches with weights (odds) from a similarity model.
    mvdb.add_probabilistic_table(
        "Match",
        ["id1", "id2"],
        [
            (("a1", "b1"), 3.0),
            (("a1", "b2"), 0.8),
            (("a2", "b2"), 2.0),
            (("a2", "b3"), 1.5),
            (("a3", "b3"), 4.0),
        ],
    )
    # Deterministic attributes of the two registries.
    mvdb.add_deterministic_table(
        "Domain",
        ["id", "domain"],
        [
            ("a1", "uw.edu"),
            ("a2", "uw.edu"),
            ("a3", "mit.edu"),
            ("b1", "uw.edu"),
            ("b2", "uw.edu"),
            ("b3", "mit.edu"),
        ],
    )
    # Hard constraint: a left record matches at most one right record.
    mvdb.add_markoview(
        MarkoView(
            "OneToOne",
            parse_query("OneToOne(x, y1, y2) :- Match(x, y1), Match(x, y2), y1 <> y2"),
            0.0,
            description="a record matches at most one record of the other registry",
        )
    )
    # Positive correlation: matches whose records share an e-mail domain support
    # each other (they likely come from the same organisation's migration).
    mvdb.add_markoview(
        MarkoView(
            "SameDomain",
            parse_query(
                "SameDomain(x1, y1, x2, y2) :- Match(x1, y1), Match(x2, y2), "
                "Domain(x1, d), Domain(x2, d), Domain(y1, d), Domain(y2, d), x1 <> x2"
            ),
            2.5,
            description="matches within the same domain reinforce each other",
        )
    )
    return mvdb


def main() -> None:
    mvdb = build_mvdb()
    engine = MVQueryEngine(mvdb)

    print("match marginals under the correlations (vs. independent odds):")
    answers = engine.query(parse_query("Q(x, y) :- Match(x, y)"))
    for (id1, id2), probability in sorted(answers.items()):
        weight = mvdb.base.weight("Match", (id1, id2))
        independent = weight / (1 + weight)
        print(
            f"  Match({id1}, {id2}): P = {probability:.4f}   "
            f"(independent would be {independent:.4f})"
        )

    query = parse_query("Q :- Match(x, 'b2')")
    print("\nP(someone matches b2), by every exact method:")
    for method in ("mvindex", "mvindex-mv", "obdd", "shannon"):
        print(f"  {method:<11} {engine.boolean_probability(query, method=method):.6f}")
    oracle = mvdb.exact_query_probability(query)
    print(f"  {'oracle':<11} {oracle:.6f}   (possible-world enumeration)")

    print("\nMC-SAT (Alchemy-style) estimate of the same query:")
    mln = mln_from_mvdb(mvdb)
    lineage = mvdb.base.lineage_of(query)
    estimate = McSatSampler(mln, seed=0).estimate_query(lineage, samples=800, burn_in=80)
    print(f"  mc-sat      {estimate:.4f}")


if __name__ == "__main__":
    main()
