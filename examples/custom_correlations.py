"""Modelling custom correlations with MarkoViews: a record-linkage flavoured example.

A small "same-person" resolution scenario:

* ``Match(id1, id2)`` is a probabilistic table of candidate matches between two
  user registries, with a weight from a (fictitious) string-similarity model;
* a denial MarkoView asserts that a record can match at most one record of the
  other registry (weight 0: hard constraint);
* a positive MarkoView boosts pairs of matches that share the same e-mail
  domain (weight > 1: positive correlation).

The example shows the exact evaluation paths agreeing (MV-index, online OBDD,
Shannon expansion) — and registers the MLN substrate's MC-SAT sampler as a
*third-party inference method* through ``repro.methods``, so the approximate
baseline runs through the very same ``db.query(..., method=...)`` door as
the exact ones, without touching the engine.

Run with::

    python examples/custom_correlations.py
"""

import repro
from repro.mln import McSatSampler, mln_from_mvdb


class McSatMethod(repro.methods.InferenceMethod):
    """Alchemy-style MC-SAT estimation, plugged in as a registry method.

    MC-SAT samples from the MLN view of the MVDB itself, so (unlike naive
    independent sampling) it handles hard constraints and positive
    correlations — the capability flag stays permissive.
    """

    name = "mc-sat"
    exact = False
    supports_negative_weights = True
    description = "MC-SAT sampling on the MLN view of the MVDB"

    def __init__(self, samples: int = 800, burn_in: int = 80, seed: int = 0) -> None:
        self.samples = samples
        self.burn_in = burn_in
        self.seed = seed

    def probability(self, engine, lineage, statistics=None):
        if engine.mvdb is None:
            raise repro.InferenceError(
                "mc-sat needs the source MVDB; engines restored from artifacts "
                "only carry the translated products"
            )
        mln = mln_from_mvdb(engine.mvdb)
        sampler = McSatSampler(mln, seed=self.seed)
        return sampler.estimate_query(lineage, samples=self.samples, burn_in=self.burn_in)


def build_mvdb() -> repro.MVDB:
    mvdb = repro.MVDB()
    # Candidate matches with weights (odds) from a similarity model.
    mvdb.add_probabilistic_table(
        "Match",
        ["id1", "id2"],
        [
            (("a1", "b1"), 3.0),
            (("a1", "b2"), 0.8),
            (("a2", "b2"), 2.0),
            (("a2", "b3"), 1.5),
            (("a3", "b3"), 4.0),
        ],
    )
    # Deterministic attributes of the two registries.
    mvdb.add_deterministic_table(
        "Domain",
        ["id", "domain"],
        [
            ("a1", "uw.edu"),
            ("a2", "uw.edu"),
            ("a3", "mit.edu"),
            ("b1", "uw.edu"),
            ("b2", "uw.edu"),
            ("b3", "mit.edu"),
        ],
    )
    # Hard constraint: a left record matches at most one right record.
    mvdb.add_markoview(
        repro.MarkoView(
            "OneToOne",
            repro.parse_query("OneToOne(x, y1, y2) :- Match(x, y1), Match(x, y2), y1 <> y2"),
            0.0,
            description="a record matches at most one record of the other registry",
        )
    )
    # Positive correlation: matches whose records share an e-mail domain support
    # each other (they likely come from the same organisation's migration).
    mvdb.add_markoview(
        repro.MarkoView(
            "SameDomain",
            repro.parse_query(
                "SameDomain(x1, y1, x2, y2) :- Match(x1, y1), Match(x2, y2), "
                "Domain(x1, d), Domain(x2, d), Domain(y1, d), Domain(y2, d), x1 <> x2"
            ),
            2.5,
            description="matches within the same domain reinforce each other",
        )
    )
    return mvdb


def main() -> None:
    mvdb = build_mvdb()
    db = repro.connect(mvdb)

    print("match marginals under the correlations (vs. independent odds):")
    result = db.query("Q(x, y) :- Match(x, y)")
    for answer in sorted(result, key=lambda a: a.values):
        id1, id2 = answer.values
        weight = mvdb.base.weight("Match", (id1, id2))
        independent = weight / (1 + weight)
        print(
            f"  Match({id1}, {id2}): P = {answer.probability:.4f}   "
            f"(independent would be {independent:.4f})"
        )

    query = "Q :- Match(x, 'b2')"
    print("\nP(someone matches b2), by every exact method:")
    for method in ("mvindex", "mvindex-mv", "obdd", "shannon"):
        print(f"  {method:<11} {db.boolean_probability(query, method=method):.6f}")
    oracle = mvdb.exact_query_probability(repro.parse_query(query))
    print(f"  {'oracle':<11} {oracle:.6f}   (possible-world enumeration)")

    # Plug the MC-SAT baseline into the registry: every surface — this
    # client, the serving session, even the CLI — can now resolve it.
    if "mc-sat" not in repro.methods.names():
        repro.methods.register("mc-sat", McSatMethod)
    estimate = db.query(query, method="mc-sat")
    print("\nMC-SAT (Alchemy-style) through the same front door:")
    print(f"  mc-sat      {estimate.probability(()):.4f}   (exact={estimate.exact})")


if __name__ == "__main__":
    main()
