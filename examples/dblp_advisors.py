"""The paper's running example on the synthetic DBLP workload.

Builds the Fig. 1 MVDB (deterministic DBLP tables, probabilistic Student /
Advisor / Affiliation tables, MarkoViews V1-V3), connects through the
client facade (which compiles the MV-index offline), and runs the Sect. 1
query "find all students advised by X" plus the Sect. 5.4 workload
queries — the typed results report their own latency and cache provenance.

Run with::

    python examples/dblp_advisors.py [group_count]
"""

import sys
import time

import repro
from repro.dblp import (
    DblpConfig,
    advisor_of_student,
    affiliation_of_author,
    build_mvdb,
    madden_query,
)


def main(group_count: int = 12) -> None:
    print(f"generating synthetic DBLP data ({group_count} research groups)...")
    workload = build_mvdb(DblpConfig(group_count=group_count, seed=1))
    print("dataset inventory (cf. Fig. 1):")
    for relation, rows in workload.size_report().items():
        print(f"  {relation:<18} {rows:>7} rows")

    print("\nconnecting (offline: translation + W lineage + MV-index compile)...")
    start = time.perf_counter()
    db = repro.connect(workload.mvdb)
    stats = db.stats()
    print(
        f"  done in {time.perf_counter() - start:.2f}s: "
        f"{stats['index_nodes']} OBDD nodes in {stats['index_components']} components, "
        f"W lineage has {stats['w_lineage_clauses']} clauses"
    )

    # The running example: all students advised by "Advisor 3" (the LIKE pattern
    # also matches e.g. "Advisor 30", mirroring the paper's 48 Madden-alikes).
    result = db.query(madden_query("Advisor 3"))
    print(
        f"\nstudents advised by 'Advisor 3'  "
        f"({result.wall_time * 1000:.1f} ms, {len(result)} answers):"
    )
    for answer in list(result)[:8]:
        (aid,) = answer.values
        print(f"  aid={aid:<5} P = {answer.probability:.4f}")

    # Workload queries of Sect. 5.4.
    for label, workload_query in [
        ("advisor of 'Student 2-0'", advisor_of_student("Student 2-0")),
        ("affiliation of 'Student 2-0'", affiliation_of_author("Student 2-0")),
    ]:
        result = db.query(workload_query)
        print(f"\n{label}  ({result.wall_time * 1000:.1f} ms):")
        for answer in list(result)[:5]:
            print(f"  {answer.values!r:<20} P = {answer.probability:.4f}")

    # Repeat one query: the session's result cache serves it.
    warm = db.query(madden_query("Advisor 3"))
    print(
        f"\nre-issued 'Advisor 3' query: cached={warm.cached}, "
        f"{warm.wall_time * 1000:.2f} ms"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
