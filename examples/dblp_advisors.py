"""The paper's running example on the synthetic DBLP workload.

Builds the Fig. 1 MVDB (deterministic DBLP tables, probabilistic Student /
Advisor / Affiliation tables, MarkoViews V1-V3), compiles the MV-index
offline, and runs the Sect. 1 query "find all students advised by X" plus
the Sect. 5.4 workload queries, reporting per-query latency.

Run with::

    python examples/dblp_advisors.py [group_count]
"""

import sys
import time

from repro.core import MVQueryEngine
from repro.dblp import (
    DblpConfig,
    advisor_of_student,
    affiliation_of_author,
    build_mvdb,
    madden_query,
)


def main(group_count: int = 12) -> None:
    print(f"generating synthetic DBLP data ({group_count} research groups)...")
    workload = build_mvdb(DblpConfig(group_count=group_count, seed=1))
    print("dataset inventory (cf. Fig. 1):")
    for relation, rows in workload.size_report().items():
        print(f"  {relation:<18} {rows:>7} rows")

    print("\ncompiling the MV-index offline (translation + W lineage + OBDDs)...")
    start = time.perf_counter()
    engine = MVQueryEngine(workload.mvdb)
    print(
        f"  done in {time.perf_counter() - start:.2f}s: "
        f"{engine.mv_index.size} OBDD nodes in {engine.mv_index.component_count()} components, "
        f"W lineage has {engine.w_lineage_size} clauses"
    )

    # The running example: all students advised by "Advisor 3" (the LIKE pattern
    # also matches e.g. "Advisor 30", mirroring the paper's 48 Madden-alikes).
    query = madden_query("Advisor 3")
    start = time.perf_counter()
    answers = engine.query(query)
    elapsed = (time.perf_counter() - start) * 1000
    print(f"\nstudents advised by 'Advisor 3'  ({elapsed:.1f} ms, {len(answers)} answers):")
    for (aid,), probability in sorted(answers.items(), key=lambda item: -item[1])[:8]:
        print(f"  aid={aid:<5} P = {probability:.4f}")

    # Workload queries of Sect. 5.4.
    for label, workload_query in [
        ("advisor of 'Student 2-0'", advisor_of_student("Student 2-0")),
        ("affiliation of 'Student 2-0'", affiliation_of_author("Student 2-0")),
    ]:
        start = time.perf_counter()
        answers = engine.query(workload_query)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"\n{label}  ({elapsed:.1f} ms):")
        for answer, probability in sorted(answers.items(), key=lambda item: -item[1])[:5]:
            print(f"  {answer!r:<20} P = {probability:.4f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
