"""Quickstart: build a tiny MVDB, add a MarkoView, and query it.

This reproduces Example 1 of the paper: two correlated tuples ``R(a)`` and
``S(a)`` whose correlation is asserted by the MarkoView ``V(x)[w] :- R(x), S(x)``.
Everything goes through the unified client facade: ``repro.connect`` owns
translation, MV-index compilation and query serving, and queries return
typed :class:`repro.QueryResult` objects.  Run with::

    python examples/quickstart.py
"""

import repro


def main() -> None:
    # 1. An MVDB: probabilistic tables hold *weights* (odds), so a weight of 1.0
    #    means probability 1/2 and a weight of 2.0 means probability 2/3.
    mvdb = repro.MVDB()
    mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0)])
    mvdb.add_probabilistic_table("S", ["x"], [(("a",), 2.0)])

    # 2. A MarkoView asserting a *negative* correlation (weight < 1) between the
    #    R and S tuples that join on x.
    view = repro.MarkoView("V", repro.parse_query("V(x) :- R(x), S(x)"), weight=0.25)
    mvdb.add_markoview(view)

    # 3. One front door: connect() translates the MVDB into a tuple-independent
    #    database (Theorem 1), compiles the view query W into an MV-index
    #    offline, and serves queries online (with caching).
    db = repro.connect(mvdb)

    engine = db.engine  # the pipeline products stay reachable for inspection
    print("Translated INDB relations:", sorted(engine.indb.database.relation_names()))
    print(f"P0(W) on the translated INDB  = {engine.p0_w():+.4f}")
    nv_weight = engine.indb.weight("NV_V", ("a",))
    print(f"weight of NV_V(a) = (1-w)/w    = {nv_weight:+.4f}  (negative iff w > 1)")
    print()

    queries = {
        "P(R(a))": "Q :- R(x)",
        "P(S(a))": "Q :- S(x)",
        "P(R(a) and S(a))": "Q :- R(x), S(x)",
    }
    for label, text in queries.items():
        via_index = db.boolean_probability(text, method="mvindex")
        via_oracle = mvdb.exact_query_probability(repro.parse_query(text))
        print(f"{label:<22} = {via_index:.6f}   (world-enumeration oracle: {via_oracle:.6f})")

    # Typed results carry provenance, not just numbers:
    result = db.query("Q :- R(x), S(x)")
    print()
    print(
        f"typed result: {len(result)} answer(s) via {result.method!r} "
        f"(exact={result.exact}, cached={result.cached}, "
        f"{result.wall_time * 1000:.2f}ms, {result.steps} expansion steps)"
    )

    # Without the view the two tuples would be independent:
    independent = (1.0 / 2.0) * (2.0 / 3.0)
    joint = result.probability(())
    print(f"independent joint would be      {independent:.6f}")
    print(f"with the weight-0.25 MarkoView  {joint:.6f}  (negatively correlated)")


if __name__ == "__main__":
    main()
