"""A look inside the translation: negative probabilities (Sect. 3.3).

Positive correlations (MarkoView weights > 1) translate into NV tuples with
*negative* weights and probabilities on the tuple-independent side.  Every
intermediate quantity of Eq. 5 may stray outside [0, 1]; the final answer is
always a correct probability.  This example connects through the facade and
then reaches into ``db.engine`` to print those intermediate values, so the
mechanics of Theorem 1 are visible — and shows the method registry
rejecting a sampler that cannot draw from negative probabilities.

Run with::

    python examples/negative_probabilities.py
"""

import repro
from repro.lineage import shannon_probability


def main() -> None:
    mvdb = repro.MVDB()
    mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0)])
    mvdb.add_probabilistic_table("S", ["x", "y"], [(("a", 1), 1.0), (("a", 2), 1.0)])
    # A strongly positive correlation: weight 5 (odds multiplier) on R(x) ⋈ S(x,y).
    mvdb.add_markoview(repro.MarkoView("V", repro.parse_query("V(x) :- R(x), S(x, y)"), 5.0))

    db = repro.connect(mvdb)
    engine = db.engine
    indb = engine.indb

    print("translated INDB tuples (weight, probability):")
    for relation in sorted(indb.probabilistic_relations()):
        for row in indb.database.rows(relation):
            weight = indb.weight(relation, row)
            variable = indb.variable_for(relation, row)
            probability = indb.probability_of_variable(variable)
            print(f"  {relation}{row}: weight = {weight:+.3f}, probability = {probability:+.3f}")

    query_text = "Q :- R(x), S(x, y)"
    query = repro.parse_query(query_text)
    q_lineage = indb.lineage_of(query)

    p_w = engine.p0_w()
    p_q_or_w = shannon_probability(q_lineage.or_(engine.w_lineage), engine.probabilities)
    answer = db.boolean_probability(query_text, method="shannon")
    oracle = mvdb.exact_query_probability(query)

    print()
    print(f"P0(W)        = {p_w:+.6f}   <- may be negative!")
    print(f"P0(Q or W)   = {p_q_or_w:+.6f}")
    print(f"Eq. 5        = (P0(Q or W) - P0(W)) / (1 - P0(W)) = {answer:.6f}")
    print(f"ground truth = {oracle:.6f}  (possible-world enumeration of the MLN)")

    # The registry's capability flags make the limits of each method explicit:
    # sampling cannot draw from the negative probabilities printed above.
    print()
    print(f"engine has negative weights: {engine.has_nonstandard_probabilities}")
    try:
        db.query(query_text, method="sampling")
    except repro.InferenceError as exc:
        print(f"sampling rejected, as it must be: {exc}")


if __name__ == "__main__":
    main()
