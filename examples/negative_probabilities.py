"""A look inside the translation: negative probabilities (Sect. 3.3).

Positive correlations (MarkoView weights > 1) translate into NV tuples with
*negative* weights and probabilities on the tuple-independent side.  Every
intermediate quantity of Eq. 5 may stray outside [0, 1]; the final answer is
always a correct probability.  This example prints those intermediate values
so the mechanics of Theorem 1 are visible.

Run with::

    python examples/negative_probabilities.py
"""

from repro.core import MVDB, MarkoView, theorem1_probability, translate
from repro.lineage import shannon_probability
from repro.query import parse_query


def main() -> None:
    mvdb = MVDB()
    mvdb.add_probabilistic_table("R", ["x"], [(("a",), 1.0)])
    mvdb.add_probabilistic_table("S", ["x", "y"], [(("a", 1), 1.0), (("a", 2), 1.0)])
    # A strongly positive correlation: weight 5 (odds multiplier) on R(x) ⋈ S(x,y).
    mvdb.add_markoview(MarkoView("V", parse_query("V(x) :- R(x), S(x, y)"), 5.0))

    translation = translate(mvdb)
    indb = translation.indb

    print("translated INDB tuples (weight, probability):")
    for relation in sorted(indb.probabilistic_relations()):
        for row in indb.database.rows(relation):
            weight = indb.weight(relation, row)
            variable = indb.variable_for(relation, row)
            probability = indb.probability_of_variable(variable)
            print(f"  {relation}{row}: weight = {weight:+.3f}, probability = {probability:+.3f}")

    probabilities = indb.probabilities()
    query = parse_query("Q :- R(x), S(x, y)")
    q_lineage = indb.lineage_of(query)
    w_lineage = indb.lineage_of(translation.w_query)

    p_w = shannon_probability(w_lineage, probabilities)
    p_q_or_w = shannon_probability(q_lineage.or_(w_lineage), probabilities)
    answer = theorem1_probability(p_q_or_w, p_w)
    oracle = mvdb.exact_query_probability(query)

    print()
    print(f"P0(W)        = {p_w:+.6f}   <- may be negative!")
    print(f"P0(Q or W)   = {p_q_or_w:+.6f}")
    print(f"Eq. 5        = (P0(Q or W) - P0(W)) / (1 - P0(W)) = {answer:.6f}")
    print(f"ground truth = {oracle:.6f}  (possible-world enumeration of the MLN)")


if __name__ == "__main__":
    main()
