# Development targets. Everything runs from the repository root with the
# in-tree sources on PYTHONPATH; no installation required.

PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test bench docs-check all

## Tier-1 test suite (fast; what CI gates on).
test:
	$(PYTHON) -m pytest -x -q tests

## Figure-regeneration benchmarks (laptop scale, writes benchmarks/results/).
bench:
	$(PYTHON) -m pytest -q benchmarks

## Documentation checks: every python block in README.md must run, and the
## documented modules must render under pydoc.
docs-check:
	$(PYTHON) scripts/check_readme.py README.md

all: test bench docs-check
