# Development targets. Everything runs from the repository root with the
# in-tree sources on PYTHONPATH; no installation required.

PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test bench bench-gate bench-serving load-smoke scale-smoke coverage docs-check examples lint all

## Tier-1 test suite (fast; what CI gates on).
test:
	$(PYTHON) -m pytest -x -q tests

## Figure-regeneration benchmarks (laptop scale, writes benchmarks/results/).
bench:
	$(PYTHON) -m pytest -q benchmarks

## Benchmark gate: re-run fig8/fig9 at smoke scale and fail on construction
## regressions (>25% over budget) or probability drift (>1e-9) against the
## committed baseline in benchmarks/results/bench_gate_baseline.json.
bench-gate:
	$(PYTHON) scripts/bench_gate.py

## Serving benchmark: closed/open-loop HTTP load over a loopback server,
## recorded to benchmarks/results/serving_http.csv.
bench-serving:
	$(PYTHON) scripts/bench_serving.py

## Load smoke: hammer the HTTP server and fail on any 5xx, a blown p95
## bound, or a non-monotonic /v1/stats counter (what the CI job runs).
load-smoke:
	$(PYTHON) scripts/load_smoke.py

## Scale smoke: build a 10^5-tuple DBLP MVDB on the sqlite backend, compile
## the MV-index, answer one fig-5 query end-to-end, and fail on a >2x
## normalized wall-time regression against the committed baseline in
## benchmarks/results/scale_smoke_baseline.json.
scale-smoke:
	$(PYTHON) scripts/scale_smoke.py

## Coverage gate (CI): needs pytest-cov; the fail-under floor lives in
## pyproject.toml [tool.coverage.report].
coverage:
	$(PYTHON) -m pytest -q --cov=repro --cov-report=term-missing:skip-covered tests

## Documentation checks: every python block in README.md, docs/api.md,
## docs/serving.md and docs/architecture.md must run (with
## DeprecationWarning as an error), and the documented modules must render
## under pydoc.
docs-check:
	$(PYTHON) scripts/check_readme.py README.md docs/api.md docs/serving.md docs/architecture.md

## Run every example end-to-end on the facade; a DeprecationWarning leaking
## from the facade's own code paths is an error.
examples:
	set -e; for example in examples/*.py; do \
		echo "== $$example"; \
		$(PYTHON) -W error::DeprecationWarning $$example 4; \
	done

## Lint (configuration in pyproject.toml [tool.ruff]).
lint:
	ruff check src tests benchmarks scripts examples

all: test lint bench bench-gate docs-check examples
