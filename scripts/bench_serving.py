#!/usr/bin/env python
"""Serving benchmark: HTTP throughput/latency over a loopback server.

Builds the small DBLP workload, starts the JSON-HTTP serving tier on an
ephemeral loopback port, and drives it with the zipf-skewed workload mix
(:mod:`repro.serving.loadgen`) through a matrix of load shapes:

* closed loop at several concurrency levels (capacity);
* open loop at a fixed arrival rate (latency under target load);
* the **replica curve**: closed-loop capacity against ``repro serve
  --replicas N`` fleets for N = 1, 2, 4, with the load generator forked
  into one process per replica so the client GIL never becomes the
  bottleneck being measured;
* the **ingest pair**: a steady read-only round (``ingest-steady``)
  followed by the same closed-loop read stream with streaming fact
  appends and one full view extend mixed in (``ingest-extend``).  The
  latency columns of both rows are *query-only* (the loadgen tags write
  ops separately), so the pair is the recorded evidence that the
  epoch-swap write path no longer stalls reads: the in-flight-extend p99
  must stay within 2x the steady-state p99;

each after a cold round that populates the caching tiers, so the recorded
rows reflect warm serving — the regime a long-lived server lives in.
Results go to ``benchmarks/results/serving_http.csv`` and to stdout.

``--gate`` additionally checks two acceptance bars.  The scale-out bar:
4-replica qps over single-replica qps must reach a floor that depends on
how many CPUs the machine actually has (2.5x needs >= 6 cores: 4 replicas
+ router + load generator; a 1-2 core box physically cannot show it, so
the floor degrades to a sanity check there).  The write-path bar: the
``ingest-extend`` query p99 must stay within ``INGEST_STALL_FACTOR`` (2x)
of the ``ingest-steady`` p99.  ``--margin`` widens both the way
``scripts/bench_gate.py`` does for noisy shared runners.

Usage::

    python scripts/bench_serving.py                  # full matrix
    python scripts/bench_serving.py --duration 2     # quicker rounds (CI)
    python scripts/bench_serving.py --gate           # enforce the scale-out floor
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.engine import MVQueryEngine  # noqa: E402
from repro.dblp.config import DblpConfig  # noqa: E402
from repro.dblp.workload import build_mvdb  # noqa: E402
from repro.serving.loadgen import (  # noqa: E402
    WorkloadMix,
    fetch_stats,
    run_closed,
    run_ingest,
    run_open,
)
from repro.serving.router import serve_fleet  # noqa: E402
from repro.serving.server import ProbServer  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "results" / "serving_http.csv"

#: The replica counts of the recorded qps-vs-replicas curve.
REPLICA_CURVE = (1, 2, 4)

#: The write-path acceptance bar: query p99 with an extend in flight may
#: be at most this multiple of the steady-state query p99.
INGEST_STALL_FACTOR = 2.0

COLUMNS = [
    "mode",
    "replicas",
    "concurrency",
    "target_rate",
    "duration_s",
    "requests",
    "ok",
    "rejected",
    "errors",
    "qps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "string_hit_ratio",
    "result_hit_ratio",
    "lineage_hit_ratio",
]


def measure(groups: int, seed: int, duration_s: float, workers: int) -> list[dict]:
    workload = build_mvdb(DblpConfig(group_count=groups, seed=seed))
    engine = MVQueryEngine(workload.mvdb)
    mix = WorkloadMix(entities=max(2, groups // 2))
    rows: list[dict] = []
    server = ProbServer(engine, workers=workers, max_queue=128).start()
    try:
        server.dispatcher.warm()
        previous = server.dispatcher.cache_stats()
        # One cold round populates every caching tier; it is reported too,
        # labelled closed-cold, so the cold/warm gap stays visible.
        cold = run_closed(server.url, duration_s=duration_s, concurrency=4, mix=mix, seed=seed)
        previous = _append_row(rows, "closed-cold", cold, server.dispatcher.cache_stats(), previous)
        for concurrency in (1, 4, 8, 16):
            report = run_closed(
                server.url, duration_s=duration_s, concurrency=concurrency, mix=mix, seed=seed
            )
            previous = _append_row(
                rows, "closed", report, server.dispatcher.cache_stats(), previous
            )
        open_report = run_open(
            server.url, duration_s=duration_s, rate=200.0, mix=mix, seed=seed, max_outstanding=32
        )
        _append_row(rows, "open", open_report, server.dispatcher.cache_stats(), previous)
    finally:
        server.stop()
    rows.extend(measure_replica_curve(engine, mix, duration_s, workers, seed))
    rows.extend(measure_ingest(groups, seed, duration_s, workers))
    return rows


def measure_ingest(groups: int, seed: int, duration_s: float, workers: int) -> list[dict]:
    """Query latency with the write path in flight (the non-blocking bar).

    A fresh server starts on the V1+V2 view subset so the ingest round can
    perform a real delta compile (V3 over the live base) mid-stream while
    fact batches land every few hundred milliseconds.  Both rows report
    query-only latencies — the loadgen tags append/extend ops separately —
    so the comparison is read-stall against read-steady, nothing else.
    """
    workload = build_mvdb(
        DblpConfig(group_count=groups, seed=seed), include_views=("V1", "V2")
    )
    engine = MVQueryEngine(workload.mvdb)
    mix = WorkloadMix(entities=max(2, groups // 2))

    def extender(spec: dict) -> object:
        return build_mvdb(
            DblpConfig(group_count=spec.get("groups", groups), seed=spec.get("seed", seed)),
            include_views=tuple(spec.get("views", ("V1", "V2", "V3"))),
        ).mvdb

    rows: list[dict] = []
    server = ProbServer(engine, workers=workers, max_queue=128, extender=extender).start()
    try:
        server.dispatcher.warm()
        previous = server.dispatcher.cache_stats()
        run_closed(
            server.url, duration_s=max(1.0, duration_s / 2), concurrency=8,
            mix=mix, seed=seed,
        )
        previous = server.dispatcher.cache_stats()
        steady = run_closed(
            server.url, duration_s=duration_s, concurrency=8, mix=mix, seed=seed
        )
        previous = _append_row(
            rows, "ingest-steady", steady, server.dispatcher.cache_stats(), previous
        )
        ingest = run_ingest(
            server.url,
            duration_s=duration_s,
            concurrency=8,
            mix=mix,
            seed=seed,
            append_interval_s=1.0,
            append_batch=4,
            extend_spec={"groups": groups, "seed": seed, "views": ["V1", "V2", "V3"]},
        )
        _append_row(
            rows, "ingest-extend", ingest, server.dispatcher.cache_stats(), previous
        )
    finally:
        server.stop()
    return rows


def measure_replica_curve(
    engine: MVQueryEngine, mix: WorkloadMix, duration_s: float, workers: int, seed: int
) -> list[dict]:
    """Closed-loop capacity of ``--replicas N`` fleets for the recorded curve.

    The engine is built once and fork-inherited by every fleet size; the
    load generator forks one process per replica so a single client GIL
    (a few thousand req/s) cannot cap a multi-replica measurement.
    """
    rows: list[dict] = []
    for replicas in REPLICA_CURVE:
        router = serve_fleet(
            engine,
            replicas=replicas,
            server_kwargs={"workers": workers, "max_queue": 128},
        ).start()
        try:
            previous = fetch_stats(router.url)["cache"]
            # Cold round: populates every replica's caching tiers (the
            # consistent hash spreads the key population over the fleet).
            run_closed(
                router.url, duration_s=max(1.0, duration_s / 2), concurrency=4,
                mix=mix, seed=seed, processes=replicas,
            )
            previous = fetch_stats(router.url)["cache"]
            report = run_closed(
                router.url, duration_s=duration_s, concurrency=8,
                mix=mix, seed=seed, processes=replicas,
            )
            _append_row(
                rows, "fleet-closed", report, fetch_stats(router.url)["cache"], previous,
                replicas=replicas,
            )
        finally:
            router.stop()
    return rows


def _append_row(
    rows: list[dict], mode: str, report, cache: dict, previous: dict, replicas: int = 1
) -> dict:
    # Cache counters are cumulative since (fleet) server start; each row
    # reports the hit ratio of its OWN round's traffic.  ``cache`` accepts
    # both a dispatcher's cache_stats() and a cluster roll-up's "cache"
    # section — the per-tier hits/misses shape is the same by construction.

    def round_ratio(tier: str) -> float:
        hits = cache[tier]["hits"] - previous[tier]["hits"]
        misses = cache[tier]["misses"] - previous[tier]["misses"]
        return round(hits / (hits + misses), 4) if hits + misses else 0.0

    rows.append(
        {
            "mode": mode,
            "replicas": replicas,
            "concurrency": report.concurrency,
            "target_rate": report.target_rate or "",
            "duration_s": round(report.duration_s, 3),
            "requests": report.requests,
            "ok": report.ok,
            "rejected": report.rejected,
            "errors": report.server_errors + report.transport_errors,
            "qps": round(report.qps, 1),
            "p50_ms": round(report.latency_ms["p50_ms"], 3),
            "p95_ms": round(report.latency_ms["p95_ms"], 3),
            "p99_ms": round(report.latency_ms["p99_ms"], 3),
            "string_hit_ratio": round_ratio("string"),
            "result_hit_ratio": round_ratio("result"),
            "lineage_hit_ratio": round_ratio("lineage"),
        }
    )
    return cache


def required_speedup(cpus: int, margin: float) -> float:
    """The 4-vs-1 replica qps floor this machine can honestly be held to.

    The full acceptance bar (>= 2.5x) needs the 4 replicas, the router,
    and the load generator to actually run in parallel — six-plus cores.
    Below that the floor degrades: a 1-core box timeshares everything, so
    the only meaningful check is that the fleet is not pathologically
    slower than a single replica.
    """
    if cpus >= 6:
        base = 2.5
    elif cpus >= 4:
        base = 1.8
    elif cpus >= 2:
        base = 1.2
    else:
        base = 0.35
    return base * margin


def check_gate(rows: list[dict], margin: float) -> int:
    by_replicas = {
        row["replicas"]: row for row in rows if row["mode"] == "fleet-closed"
    }
    if 1 not in by_replicas or 4 not in by_replicas:
        print("gate: missing fleet-closed rows for replicas 1 and 4", file=sys.stderr)
        return 1
    single = by_replicas[1]["qps"]
    quad = by_replicas[4]["qps"]
    if single <= 0:
        print("gate: single-replica qps is zero; nothing to compare", file=sys.stderr)
        return 1
    speedup = quad / single
    cpus = os.cpu_count() or 1
    floor = required_speedup(cpus, margin)
    verdict = "PASS" if speedup >= floor else "FAIL"
    print(
        f"gate: 4-replica {quad:.1f} qps / 1-replica {single:.1f} qps = "
        f"{speedup:.2f}x (floor {floor:.2f}x on {cpus} cpus, margin {margin:g}) -> {verdict}"
    )
    return 0 if verdict == "PASS" else 1


def check_ingest_gate(rows: list[dict], margin: float) -> int:
    """Enforce the write-path bar: extend-in-flight read p99 <= 2x steady p99.

    ``margin`` relaxes the bound the same direction as the scale-out floor:
    values below 1 widen it for noisy shared runners.
    """
    steady = next((row for row in rows if row["mode"] == "ingest-steady"), None)
    during = next((row for row in rows if row["mode"] == "ingest-extend"), None)
    if steady is None or during is None:
        print("gate: missing ingest-steady / ingest-extend rows", file=sys.stderr)
        return 1
    if steady["p99_ms"] <= 0:
        print("gate: steady-state p99 is zero; nothing to compare", file=sys.stderr)
        return 1
    bound = steady["p99_ms"] * INGEST_STALL_FACTOR / margin
    verdict = "PASS" if during["p99_ms"] <= bound else "FAIL"
    print(
        f"gate: query p99 {during['p99_ms']:.3f}ms with extend in flight vs "
        f"{steady['p99_ms']:.3f}ms steady (bound {bound:.3f}ms = "
        f"{INGEST_STALL_FACTOR:g}x / margin {margin:g}) -> {verdict}"
    )
    return 0 if verdict == "PASS" else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--groups", type=int, default=8, help="DBLP research groups")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--duration", type=float, default=3.0, help="seconds per load round")
    parser.add_argument("--workers", type=int, default=4, help="dispatch workers per replica")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="CSV output path")
    parser.add_argument(
        "--gate",
        action="store_true",
        help="fail unless 4-replica qps clears the cpu-aware floor over 1-replica "
        "qps AND the extend-in-flight query p99 stays within the 2x stall bound",
    )
    parser.add_argument(
        "--margin",
        type=float,
        default=1.0,
        help="multiplier on the gate floor (<1 relaxes it for noisy shared runners)",
    )
    args = parser.parse_args(argv)

    rows = measure(args.groups, args.seed, args.duration, args.workers)

    args.out.parent.mkdir(parents=True, exist_ok=True)
    with args.out.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=COLUMNS)
        writer.writeheader()
        writer.writerows(rows)

    width = {
        column: max(len(column), *(len(str(row[column])) for row in rows)) for column in COLUMNS
    }
    print("  ".join(column.ljust(width[column]) for column in COLUMNS))
    for row in rows:
        print("  ".join(str(row[column]).ljust(width[column]) for column in COLUMNS))
    print(f"\nwrote {args.out}")
    errors = sum(row["errors"] for row in rows)
    if errors:
        print(f"serving bench saw {errors} errors", file=sys.stderr)
        return 1
    if args.gate:
        return max(check_gate(rows, args.margin), check_ingest_gate(rows, args.margin))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
