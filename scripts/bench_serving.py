#!/usr/bin/env python
"""Serving benchmark: HTTP throughput/latency over a loopback server.

Builds the small DBLP workload, starts the JSON-HTTP server
(:mod:`repro.serving.server`) on an ephemeral loopback port, and drives it
with the zipf-skewed workload mix (:mod:`repro.serving.loadgen`) through a
matrix of load shapes:

* closed loop at several concurrency levels (capacity);
* open loop at a fixed arrival rate (latency under target load);

each after a cold round that populates the caching tiers, so the recorded
rows reflect warm serving — the regime a long-lived server lives in.
Results go to ``benchmarks/results/serving_http.csv`` and to stdout.

Usage::

    python scripts/bench_serving.py                  # full matrix
    python scripts/bench_serving.py --duration 2     # quicker rounds (CI)
    python scripts/bench_serving.py --out other.csv
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.engine import MVQueryEngine  # noqa: E402
from repro.dblp.config import DblpConfig  # noqa: E402
from repro.dblp.workload import build_mvdb  # noqa: E402
from repro.serving.loadgen import WorkloadMix, run_closed, run_open  # noqa: E402
from repro.serving.server import ProbServer  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "results" / "serving_http.csv"

COLUMNS = [
    "mode",
    "concurrency",
    "target_rate",
    "duration_s",
    "requests",
    "ok",
    "rejected",
    "errors",
    "qps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "string_hit_ratio",
    "result_hit_ratio",
    "lineage_hit_ratio",
]


def measure(groups: int, seed: int, duration_s: float, workers: int) -> list[dict]:
    workload = build_mvdb(DblpConfig(group_count=groups, seed=seed))
    engine = MVQueryEngine(workload.mvdb)
    mix = WorkloadMix(entities=max(2, groups // 2))
    rows: list[dict] = []
    server = ProbServer(engine, workers=workers, max_queue=128).start()
    try:
        server.dispatcher.warm()
        previous = server.dispatcher.cache_stats()
        # One cold round populates every caching tier; it is reported too,
        # labelled closed-cold, so the cold/warm gap stays visible.
        cold = run_closed(server.url, duration_s=duration_s, concurrency=4, mix=mix, seed=seed)
        previous = _append_row(rows, "closed-cold", cold, server, previous)
        for concurrency in (1, 4, 8, 16):
            report = run_closed(
                server.url, duration_s=duration_s, concurrency=concurrency, mix=mix, seed=seed
            )
            previous = _append_row(rows, "closed", report, server, previous)
        open_report = run_open(
            server.url, duration_s=duration_s, rate=200.0, mix=mix, seed=seed, max_outstanding=32
        )
        _append_row(rows, "open", open_report, server, previous)
    finally:
        server.stop()
    return rows


def _append_row(rows: list[dict], mode: str, report, server: ProbServer, previous: dict) -> dict:
    # The dispatcher's cache counters are cumulative since server start;
    # each row reports the hit ratio of its OWN round's traffic.
    cache = server.dispatcher.cache_stats()

    def round_ratio(tier: str) -> float:
        hits = cache[tier]["hits"] - previous[tier]["hits"]
        misses = cache[tier]["misses"] - previous[tier]["misses"]
        return round(hits / (hits + misses), 4) if hits + misses else 0.0

    rows.append(
        {
            "mode": mode,
            "concurrency": report.concurrency,
            "target_rate": report.target_rate or "",
            "duration_s": round(report.duration_s, 3),
            "requests": report.requests,
            "ok": report.ok,
            "rejected": report.rejected,
            "errors": report.server_errors + report.transport_errors,
            "qps": round(report.qps, 1),
            "p50_ms": round(report.latency_ms["p50_ms"], 3),
            "p95_ms": round(report.latency_ms["p95_ms"], 3),
            "p99_ms": round(report.latency_ms["p99_ms"], 3),
            "string_hit_ratio": round_ratio("string"),
            "result_hit_ratio": round_ratio("result"),
            "lineage_hit_ratio": round_ratio("lineage"),
        }
    )
    return cache


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--groups", type=int, default=8, help="DBLP research groups")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--duration", type=float, default=3.0, help="seconds per load round")
    parser.add_argument("--workers", type=int, default=4, help="dispatch workers")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="CSV output path")
    args = parser.parse_args(argv)

    rows = measure(args.groups, args.seed, args.duration, args.workers)

    args.out.parent.mkdir(parents=True, exist_ok=True)
    with args.out.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=COLUMNS)
        writer.writeheader()
        writer.writerows(rows)

    width = {column: max(len(column), *(len(str(row[column])) for row in rows)) for column in COLUMNS}
    print("  ".join(column.ljust(width[column]) for column in COLUMNS))
    for row in rows:
        print("  ".join(str(row[column]).ljust(width[column]) for column in COLUMNS))
    print(f"\nwrote {args.out}")
    errors = sum(row["errors"] for row in rows)
    if errors:
        print(f"serving bench saw {errors} errors", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
