#!/usr/bin/env python
"""Load smoke: start the HTTP server, hammer it, assert serving invariants.

The CI ``load-smoke`` job runs this script.  It builds a tiny DBLP
artifact-equivalent workload in-process, starts the JSON-HTTP server on an
ephemeral loopback port, drives it with the closed-loop zipf-skewed
workload for ``--duration`` seconds while polling ``/v1/stats`` once a
second, and fails (exit 1) when any serving invariant breaks:

* **no 5xx, no transport errors** — every request must get a well-formed
  HTTP answer (429 rejections are allowed: that is admission control
  working, not failing);
* **p95 latency** must stay under ``--p95-ms`` (a generous bound — this is
  a smoke test on shared CI runners, not a benchmark);
* **monotonic counters** — the cumulative counters in ``/v1/stats``
  (requests_total, rejected_total, errors_total, per-tier hits/misses)
  must never decrease between polls;
* **zero server-side errors_total** after the run;
* the final round of probabilities must match an in-process ``ProbDB``
  byte-for-byte (the transport must not change a single answer).

``--ingest`` switches the stream to the mixed write workload: the server
starts on the V1+V2 view subset, fact batches are appended on an open-loop
schedule, and one full view extend lands mid-run while the query stream
keeps hammering.  All the invariants above still hold — the latency bound
applies to the *query* ops only (the loadgen tags write ops separately) —
plus: every write must succeed, and through a fleet the replicas must end
the run on the same invalidation generation.  The parity reference replays
the extend, which is the whole point: the write path must leave every
answer byte-identical to an in-process engine with the same view history.

``--subscriptions N`` switches to the standing-query workload: register
``N`` subscriptions, stream live ingest (batches rotate between
answer-changing, provably-skippable, and all-overlapping-but-quiet), and
long-poll the notification stream with a running cursor.  Extra
invariants: every registration succeeds; notification seq numbers are
**gapless and duplicate-free** from 1 (exactly-once); at least one
notification fires; the reported skip fraction is > 0 (the evaluator
really skips provably-unchanged subscriptions); notify-poll p95 stays
bounded; and the final answers are byte-identical to an in-process
reference that replays the same append sequence.  With ``--replicas 2``
the smoke additionally SIGKILLs the *follower* replica mid-run — the
fleet restarts it from the replicated op log, and the smoke asserts the
restarted follower regenerates the leader's notification stream
byte-for-byte (same seqs, same payloads), which is what makes the
client-held cursor exactly-once across the whole cluster.

Usage::

    python scripts/load_smoke.py                  # ~15s, CI defaults
    python scripts/load_smoke.py --duration 5     # quicker local check
    python scripts/load_smoke.py --replicas 2 --ingest   # CI ingest-smoke
    python scripts/load_smoke.py --replicas 2 --subscriptions 1000  # CI subscription-smoke
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402
from repro.dblp.config import DblpConfig  # noqa: E402
from repro.dblp.workload import build_mvdb  # noqa: E402
from repro.serving.loadgen import (  # noqa: E402
    WorkloadMix,
    fetch_stats,
    run_closed,
    run_ingest,
    run_subscriptions,
    subscription_batch_facts,
)
from repro.serving.server import ProbServer  # noqa: E402

#: The cumulative /v1/stats counters that must never decrease.
MONOTONIC = (
    ("throughput", "requests_total"),
    ("throughput", "answers_total"),
    ("admission", "rejected_total"),
    ("admission", "coalesced_total"),
    ("errors", "total"),
)


def poll_stats(url: str, stop: threading.Event, interval_s: float, failures: list[str]) -> None:
    previous: dict[tuple[str, str], int] = {}
    previous_tiers: dict[tuple[str, str], int] = {}
    while not stop.is_set():
        try:
            stats = fetch_stats(url)
        except Exception as exc:  # the load must go on; record and retry
            failures.append(f"stats poll failed: {exc!r}")
            stop.wait(interval_s)
            continue
        for section, counter in MONOTONIC:
            value = stats[section][counter]
            key = (section, counter)
            if value < previous.get(key, 0):
                failures.append(
                    f"non-monotonic counter {section}.{counter}: "
                    f"{previous[key]} -> {value}"
                )
            previous[key] = value
        for tier, tier_stats in stats["cache"].items():
            for counter in ("hits", "misses"):
                key = (tier, counter)
                value = tier_stats[counter]
                if value < previous_tiers.get(key, 0):
                    failures.append(
                        f"non-monotonic cache counter {tier}.{counter}: "
                        f"{previous_tiers[key]} -> {value}"
                    )
                previous_tiers[key] = value
        stop.wait(interval_s)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--groups", type=int, default=6, help="DBLP research groups")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--duration", type=float, default=15.0, help="seconds of load")
    parser.add_argument("--concurrency", type=int, default=8, help="closed-loop workers")
    parser.add_argument("--workers", type=int, default=4, help="server dispatch workers")
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="serve through a replica fleet + router instead of one ProbServer",
    )
    parser.add_argument(
        "--p95-ms", type=float, default=2000.0, help="p95 latency bound (generous)"
    )
    parser.add_argument(
        "--min-qps", type=float, default=0.0, help="optional throughput floor (0 = off)"
    )
    parser.add_argument(
        "--ingest",
        action="store_true",
        help="mix streaming fact appends and one mid-run view extend into the stream",
    )
    parser.add_argument(
        "--append-interval",
        type=float,
        default=1.0,
        help="seconds between appended fact batches in --ingest mode",
    )
    parser.add_argument(
        "--subscriptions",
        type=int,
        default=0,
        help="standing-query mode: register this many subscriptions against live "
        "ingest (0 = off); with --replicas 2 the follower is SIGKILLed mid-run",
    )
    args = parser.parse_args(argv)
    if args.subscriptions and args.ingest:
        parser.error("--subscriptions and --ingest are separate modes; pick one")

    config = DblpConfig(group_count=args.groups, seed=args.seed)
    initial_views = ("V1", "V2") if args.ingest else ("V1", "V2", "V3")
    workload = build_mvdb(config, include_views=initial_views)
    db = repro.connect(workload.mvdb)

    def extender(spec: dict):
        return build_mvdb(
            DblpConfig(
                group_count=spec.get("groups", args.groups),
                seed=spec.get("seed", args.seed),
            ),
            include_views=tuple(spec.get("views", ("V1", "V2", "V3"))),
        ).mvdb

    if args.replicas > 1:
        from repro.serving.router import serve_fleet

        # The same invariants must hold through the router: the cluster
        # /v1/stats roll-up is shaped like a single server's document, so
        # the monotonic-counter poller runs unchanged against it.
        server = serve_fleet(
            db.engine,
            replicas=args.replicas,
            extender=extender,
            server_kwargs={"workers": args.workers, "max_queue": 64},
        ).start()
    else:
        server = ProbServer(
            db.engine, workers=args.workers, max_queue=64, extender=extender
        ).start()
        server.dispatcher.warm()
    failures: list[str] = []
    stop = threading.Event()
    poller = threading.Thread(
        target=poll_stats, args=(server.url, stop, 1.0, failures), daemon=True
    )
    try:
        poller.start()
        mix = WorkloadMix(entities=max(2, args.groups // 2))
        extras: dict = {}
        killed: dict = {"pid": None}
        if args.subscriptions:
            if args.replicas > 1:
                fleet = server.fleet
                follower = fleet.slots[-1]

                def kill_follower() -> None:
                    # Wait until every standing query is armed cluster-wide,
                    # let a few ingest ticks land, then SIGKILL the follower:
                    # the fleet must restart it from the replicated op log.
                    deadline = time.monotonic() + 120.0
                    while time.monotonic() < deadline and not stop.is_set():
                        try:
                            armed = fetch_stats(server.url)["subscriptions"]["active"]
                        except Exception:
                            armed = 0
                        if armed >= args.subscriptions:
                            break
                        stop.wait(0.5)
                    stop.wait(max(1.0, args.duration * 0.3))
                    if stop.is_set():
                        return
                    pid = fleet.pid(follower)
                    if pid is not None:
                        killed["pid"] = pid
                        os.kill(pid, signal.SIGKILL)

                threading.Thread(target=kill_follower, daemon=True).start()
            report, extras = run_subscriptions(
                server.url,
                subscriptions=args.subscriptions,
                duration_s=args.duration,
                concurrency=min(4, args.concurrency),
                mix=mix,
                seed=args.seed,
                append_interval_s=args.append_interval,
            )
        elif args.ingest:
            report = run_ingest(
                server.url,
                duration_s=args.duration,
                concurrency=args.concurrency,
                mix=mix,
                seed=args.seed,
                append_interval_s=args.append_interval,
                extend_spec={
                    "groups": args.groups,
                    "seed": args.seed,
                    "views": ["V1", "V2", "V3"],
                },
            )
        else:
            report = run_closed(
                server.url,
                duration_s=args.duration,
                concurrency=args.concurrency,
                mix=mix,
                seed=args.seed,
            )
        stop.set()
        poller.join(timeout=5.0)
        print(report.render())

        if report.server_errors:
            failures.append(f"{report.server_errors} responses were 5xx")
        if report.transport_errors:
            failures.append(f"{report.transport_errors} requests died in transport")
        if report.latency_ms["p95_ms"] > args.p95_ms:
            failures.append(
                f"query p95 latency {report.latency_ms['p95_ms']:.1f}ms exceeds "
                f"the {args.p95_ms:.0f}ms bound"
            )
        if args.min_qps and report.qps < args.min_qps:
            failures.append(f"throughput {report.qps:.1f} qps below floor {args.min_qps}")

        if args.subscriptions and args.replicas > 1:
            # Give the fleet time to restart the SIGKILLed follower before
            # reading the final cluster state.
            recovery_deadline = time.monotonic() + 60.0
            while time.monotonic() < recovery_deadline:
                if fetch_stats(server.url)["router"]["replicas_alive"] >= args.replicas:
                    break
                time.sleep(0.5)
            else:
                failures.append("follower never came back after the mid-run SIGKILL")

        stats = fetch_stats(server.url)
        if stats["errors"]["total"]:
            failures.append(f"server counted {stats['errors']['total']} internal errors")

        # Transport parity: the HTTP answers must be byte-identical to the
        # in-process facade's for the same queries.  In ingest mode the
        # reference replays the view history (V1+V2, then the extend): the
        # write path must not perturb a single answer bit.
        if args.subscriptions:
            if len(extras["subscription_ids"]) != args.subscriptions:
                failures.append(
                    f"only {len(extras['subscription_ids'])} of {args.subscriptions} "
                    "subscriptions registered successfully"
                )
            if len(set(extras["subscription_ids"])) != len(extras["subscription_ids"]):
                failures.append("the server assigned duplicate subscription ids")
            if extras["append_batches"] < 3:
                failures.append(
                    f"only {extras['append_batches']} ingest batches landed; the "
                    "rotation needs at least 3 to exercise fire/skip/quiet ticks"
                )

            # Exactly-once: the cursor-driven stream must be gapless and
            # duplicate-free from seq 1, and something must actually fire.
            seqs = [notification["seq"] for notification in extras["notifications"]]
            if not seqs:
                failures.append("no notification fired under live ingest")
            elif seqs != list(range(1, len(seqs) + 1)):
                failures.append(
                    f"notification stream has gaps or duplicates: got {len(seqs)} "
                    f"entries, head {seqs[-1]}, first break at "
                    f"{next(i for i, s in enumerate(seqs, 1) if s != i)}"
                )

            sub_stats = stats["subscriptions"]
            evaluations = sub_stats["evaluations_total"]
            skips = sub_stats["skips_total"]
            if skips <= 0:
                failures.append(
                    "the evaluator never skipped a provably-unchanged subscription "
                    "(skip fraction must be > 0 on the rotating ingest mix)"
                )
            else:
                print(
                    f"subscriptions: {sub_stats['active']} active, "
                    f"{sub_stats['ticks_total']} ticks, {evaluations} evaluations, "
                    f"skip fraction {skips / max(1, skips + evaluations):.2f}, "
                    f"{sub_stats['notifications_total']} notifications"
                )
            notify_p95 = report.op_latency_ms.get("notify", {}).get("p95_ms", 0.0)
            # Long-polls block up to 1s waiting for news by design; the bound
            # catches pathological stalls, not the wait itself.
            if notify_p95 > max(5000.0, args.p95_ms):
                failures.append(
                    f"notify long-poll p95 {notify_p95:.1f}ms exceeds the bound"
                )

            if args.replicas > 1:
                if killed["pid"] is None:
                    failures.append("the smoke never got to SIGKILL the follower")
                if stats["router"]["restarts_total"] < 1:
                    failures.append("the fleet recorded no restart after the SIGKILL")
                # Every replica — including the restarted follower — must hold
                # the identical notification stream: same seqs, same payloads.
                streams = []
                for slot in server.fleet.alive_slots():
                    host, port = server.fleet.address(slot)
                    request = urllib.request.Request(
                        f"http://{host}:{port}/v1/notifications",
                        data=json.dumps(
                            {"since": 0, "wait_s": 0, "limit": 1000000}
                        ).encode("utf-8"),
                        headers={"Content-Type": "application/json"},
                        method="POST",
                    )
                    with urllib.request.urlopen(request, timeout=10.0) as response:
                        document = json.loads(response.read())
                    streams.append(json.dumps(document["notifications"], sort_keys=True))
                if len(streams) != args.replicas:
                    failures.append(
                        f"only {len(streams)} of {args.replicas} replicas answered "
                        "the final notification read"
                    )
                if len(set(streams)) > 1:
                    failures.append(
                        "replicas regenerated different notification streams "
                        "after the follower restart"
                    )
                elif streams and seqs and json.dumps(
                    extras["notifications"], sort_keys=True
                ) != streams[0]:
                    failures.append(
                        "the client-collected stream differs from the replicas' streams"
                    )

            # The parity reference replays the exact append sequence the
            # writer sent — standing-query machinery must not perturb answers.
            reference = repro.connect(build_mvdb(config).mvdb)
            for batch_index in range(extras["append_batches"]):
                reference.append_facts(
                    subscription_batch_facts(
                        batch_index, batch_size=4, entities=mix.entities
                    )
                )
        elif args.ingest:
            if report.ops.get("append", 0) < 1:
                failures.append("ingest run never appended a fact batch")
            if report.ops.get("extend", 0) != 1:
                failures.append(
                    f"ingest run recorded {report.ops.get('extend', 0)} extends, expected 1"
                )
            if args.replicas > 1 and stats["generation"] != stats["generation_max"]:
                failures.append(
                    f"replicas ended on different generations: floor "
                    f"{stats['generation']} vs frontier {stats['generation_max']}"
                )
            reference = repro.connect(build_mvdb(config, include_views=("V1", "V2")).mvdb)
            reference.extend(build_mvdb(config).mvdb)
        else:
            reference = db
        remote = repro.connect_remote(server.url)
        queries, __ = mix.population()
        for query in queries[: min(5, len(queries))]:
            local_doc = json.dumps(
                reference.query(query).to_json()["answers"], sort_keys=True
            )
            remote_doc = json.dumps(remote.query(query).to_json()["answers"], sort_keys=True)
            if local_doc != remote_doc:
                failures.append(f"transport parity broken for {query!r}")
    finally:
        stop.set()
        server.stop()

    if failures:
        print("\nLOAD SMOKE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("load smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
