#!/usr/bin/env python
"""Load smoke: start the HTTP server, hammer it, assert serving invariants.

The CI ``load-smoke`` job runs this script.  It builds a tiny DBLP
artifact-equivalent workload in-process, starts the JSON-HTTP server on an
ephemeral loopback port, drives it with the closed-loop zipf-skewed
workload for ``--duration`` seconds while polling ``/v1/stats`` once a
second, and fails (exit 1) when any serving invariant breaks:

* **no 5xx, no transport errors** — every request must get a well-formed
  HTTP answer (429 rejections are allowed: that is admission control
  working, not failing);
* **p95 latency** must stay under ``--p95-ms`` (a generous bound — this is
  a smoke test on shared CI runners, not a benchmark);
* **monotonic counters** — the cumulative counters in ``/v1/stats``
  (requests_total, rejected_total, errors_total, per-tier hits/misses)
  must never decrease between polls;
* **zero server-side errors_total** after the run;
* the final round of probabilities must match an in-process ``ProbDB``
  byte-for-byte (the transport must not change a single answer).

``--ingest`` switches the stream to the mixed write workload: the server
starts on the V1+V2 view subset, fact batches are appended on an open-loop
schedule, and one full view extend lands mid-run while the query stream
keeps hammering.  All the invariants above still hold — the latency bound
applies to the *query* ops only (the loadgen tags write ops separately) —
plus: every write must succeed, and through a fleet the replicas must end
the run on the same invalidation generation.  The parity reference replays
the extend, which is the whole point: the write path must leave every
answer byte-identical to an in-process engine with the same view history.

Usage::

    python scripts/load_smoke.py                  # ~15s, CI defaults
    python scripts/load_smoke.py --duration 5     # quicker local check
    python scripts/load_smoke.py --replicas 2 --ingest   # CI ingest-smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402
from repro.dblp.config import DblpConfig  # noqa: E402
from repro.dblp.workload import build_mvdb  # noqa: E402
from repro.serving.loadgen import (  # noqa: E402
    WorkloadMix,
    fetch_stats,
    run_closed,
    run_ingest,
)
from repro.serving.server import ProbServer  # noqa: E402

#: The cumulative /v1/stats counters that must never decrease.
MONOTONIC = (
    ("throughput", "requests_total"),
    ("throughput", "answers_total"),
    ("admission", "rejected_total"),
    ("admission", "coalesced_total"),
    ("errors", "total"),
)


def poll_stats(url: str, stop: threading.Event, interval_s: float, failures: list[str]) -> None:
    previous: dict[tuple[str, str], int] = {}
    previous_tiers: dict[tuple[str, str], int] = {}
    while not stop.is_set():
        try:
            stats = fetch_stats(url)
        except Exception as exc:  # the load must go on; record and retry
            failures.append(f"stats poll failed: {exc!r}")
            stop.wait(interval_s)
            continue
        for section, counter in MONOTONIC:
            value = stats[section][counter]
            key = (section, counter)
            if value < previous.get(key, 0):
                failures.append(
                    f"non-monotonic counter {section}.{counter}: "
                    f"{previous[key]} -> {value}"
                )
            previous[key] = value
        for tier, tier_stats in stats["cache"].items():
            for counter in ("hits", "misses"):
                key = (tier, counter)
                value = tier_stats[counter]
                if value < previous_tiers.get(key, 0):
                    failures.append(
                        f"non-monotonic cache counter {tier}.{counter}: "
                        f"{previous_tiers[key]} -> {value}"
                    )
                previous_tiers[key] = value
        stop.wait(interval_s)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--groups", type=int, default=6, help="DBLP research groups")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--duration", type=float, default=15.0, help="seconds of load")
    parser.add_argument("--concurrency", type=int, default=8, help="closed-loop workers")
    parser.add_argument("--workers", type=int, default=4, help="server dispatch workers")
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="serve through a replica fleet + router instead of one ProbServer",
    )
    parser.add_argument(
        "--p95-ms", type=float, default=2000.0, help="p95 latency bound (generous)"
    )
    parser.add_argument(
        "--min-qps", type=float, default=0.0, help="optional throughput floor (0 = off)"
    )
    parser.add_argument(
        "--ingest",
        action="store_true",
        help="mix streaming fact appends and one mid-run view extend into the stream",
    )
    parser.add_argument(
        "--append-interval",
        type=float,
        default=1.0,
        help="seconds between appended fact batches in --ingest mode",
    )
    args = parser.parse_args(argv)

    config = DblpConfig(group_count=args.groups, seed=args.seed)
    initial_views = ("V1", "V2") if args.ingest else ("V1", "V2", "V3")
    workload = build_mvdb(config, include_views=initial_views)
    db = repro.connect(workload.mvdb)

    def extender(spec: dict):
        return build_mvdb(
            DblpConfig(
                group_count=spec.get("groups", args.groups),
                seed=spec.get("seed", args.seed),
            ),
            include_views=tuple(spec.get("views", ("V1", "V2", "V3"))),
        ).mvdb

    if args.replicas > 1:
        from repro.serving.router import serve_fleet

        # The same invariants must hold through the router: the cluster
        # /v1/stats roll-up is shaped like a single server's document, so
        # the monotonic-counter poller runs unchanged against it.
        server = serve_fleet(
            db.engine,
            replicas=args.replicas,
            extender=extender,
            server_kwargs={"workers": args.workers, "max_queue": 64},
        ).start()
    else:
        server = ProbServer(
            db.engine, workers=args.workers, max_queue=64, extender=extender
        ).start()
        server.dispatcher.warm()
    failures: list[str] = []
    stop = threading.Event()
    poller = threading.Thread(
        target=poll_stats, args=(server.url, stop, 1.0, failures), daemon=True
    )
    try:
        poller.start()
        mix = WorkloadMix(entities=max(2, args.groups // 2))
        if args.ingest:
            report = run_ingest(
                server.url,
                duration_s=args.duration,
                concurrency=args.concurrency,
                mix=mix,
                seed=args.seed,
                append_interval_s=args.append_interval,
                extend_spec={
                    "groups": args.groups,
                    "seed": args.seed,
                    "views": ["V1", "V2", "V3"],
                },
            )
        else:
            report = run_closed(
                server.url,
                duration_s=args.duration,
                concurrency=args.concurrency,
                mix=mix,
                seed=args.seed,
            )
        stop.set()
        poller.join(timeout=5.0)
        print(report.render())

        if report.server_errors:
            failures.append(f"{report.server_errors} responses were 5xx")
        if report.transport_errors:
            failures.append(f"{report.transport_errors} requests died in transport")
        if report.latency_ms["p95_ms"] > args.p95_ms:
            failures.append(
                f"query p95 latency {report.latency_ms['p95_ms']:.1f}ms exceeds "
                f"the {args.p95_ms:.0f}ms bound"
            )
        if args.min_qps and report.qps < args.min_qps:
            failures.append(f"throughput {report.qps:.1f} qps below floor {args.min_qps}")

        stats = fetch_stats(server.url)
        if stats["errors"]["total"]:
            failures.append(f"server counted {stats['errors']['total']} internal errors")

        # Transport parity: the HTTP answers must be byte-identical to the
        # in-process facade's for the same queries.  In ingest mode the
        # reference replays the view history (V1+V2, then the extend): the
        # write path must not perturb a single answer bit.
        if args.ingest:
            if report.ops.get("append", 0) < 1:
                failures.append("ingest run never appended a fact batch")
            if report.ops.get("extend", 0) != 1:
                failures.append(
                    f"ingest run recorded {report.ops.get('extend', 0)} extends, expected 1"
                )
            if args.replicas > 1 and stats["generation"] != stats["generation_max"]:
                failures.append(
                    f"replicas ended on different generations: floor "
                    f"{stats['generation']} vs frontier {stats['generation_max']}"
                )
            reference = repro.connect(build_mvdb(config, include_views=("V1", "V2")).mvdb)
            reference.extend(build_mvdb(config).mvdb)
        else:
            reference = db
        remote = repro.connect_remote(server.url)
        queries, __ = mix.population()
        for query in queries[: min(5, len(queries))]:
            local_doc = json.dumps(
                reference.query(query).to_json()["answers"], sort_keys=True
            )
            remote_doc = json.dumps(remote.query(query).to_json()["answers"], sort_keys=True)
            if local_doc != remote_doc:
                failures.append(f"transport parity broken for {query!r}")
    finally:
        stop.set()
        server.stop()

    if failures:
        print("\nLOAD SMOKE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("load smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
