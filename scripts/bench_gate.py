#!/usr/bin/env python
"""Benchmark gate: fail CI on construction-time or probability regressions.

The gate re-runs the hot paths of Fig. 8 (OBDD construction: CUDD-style
synthesis and ConOBDD concatenation over the full view lineage ``W``) and
Fig. 9 (worst-case MV-index intersection) at *smoke scale*, then compares
the results against the committed baseline in
``benchmarks/results/bench_gate_baseline.json``:

* **probabilities must not drift**: ``P0(W)`` and a fixed set of query
  intersections must match the recorded values within ``1e-9`` — the OBDD
  kernel is deterministic, so any drift is a correctness bug;
* **work counts must not regress**: the number of apply-cache misses
  (``ObddManager.apply_steps``) is a platform-neutral measure of synthesis
  effort and may not exceed the recorded count by more than 5%;
* **wall-clock must stay inside budget**: every timed section has a budget
  (in *normalized* time, see below) and fails the gate when it exceeds the
  budget by more than 25%;
* **the recorded write-path evidence must hold**: the committed
  ``benchmarks/results/serving_http.csv`` must contain the
  ``ingest-steady`` / ``ingest-extend`` row pair and the recorded
  extend-in-flight query p99 must be within 2x the steady-state p99 — the
  non-blocking write path's acceptance bar, re-measured (and re-gated
  live) by ``scripts/bench_serving.py --gate``;
* **the recorded skip-effectiveness evidence must hold**: the committed
  ``benchmarks/results/skipping_ablation.csv`` must show the summary-driven
  skip path beating the unskipped path by at least 1.5x at >= 1000
  components with probabilities agreeing within the ulp tolerance
  (produced by ``scripts/bench_skipping.py``; the required ``skip-gate``
  CI job regenerates and re-checks it fresh every run).

Wall-clock comparisons across machines are meaningless, so every run first
times a fixed pure-Python calibration workload and divides the measured
sections by it.  A machine twice as fast halves both numbers and the ratio
is stable; what the gate really bounds is "kernel work per unit of
interpreter speed".

The committed baseline was recorded with the *pre-PR recursive kernel* and
encodes the acceptance bar of the iterative-kernel rewrite: the fig8
ConOBDD concatenation and the MV-index build — the construction paths the
system actually runs — carry budgets of ``reference_seconds / 2`` (at
least twice as fast as the recursive kernel), while the CUDD-style
synthesis strawman and the fig9 intersections use their reference time as
the budget (no regression allowed beyond the 25% margin).

Usage::

    python scripts/bench_gate.py                 # compare against baseline
    python scripts/bench_gate.py --update        # re-record the baseline
    python scripts/bench_gate.py --json          # machine-readable report
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.engine import MVQueryEngine  # noqa: E402
from repro.dblp.config import DblpConfig  # noqa: E402
from repro.dblp.workload import build_mvdb, students_of_advisor  # noqa: E402
from repro.lineage.dnf import DNF  # noqa: E402
from repro.mvindex.cc_intersect import cc_mv_intersect  # noqa: E402
from repro.mvindex.index import MVIndex  # noqa: E402
from repro.mvindex.intersect import mv_intersect  # noqa: E402
from repro.numerics import GATE_PROBABILITY_ULPS, within_ulps  # noqa: E402
from repro.obdd.construct import build_obdd  # noqa: E402
from repro.serving.session import QuerySession  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "results" / "bench_gate_baseline.json"
DEFAULT_SERVING_CSV = REPO_ROOT / "benchmarks" / "results" / "serving_http.csv"
DEFAULT_SKIPPING_CSV = REPO_ROOT / "benchmarks" / "results" / "skipping_ablation.csv"

#: Recorded write-path bar: extend-in-flight query p99 over steady p99.
INGEST_STALL_FACTOR = 2.0

#: Skip-gate bars on the recorded ablation (see scripts/bench_skipping.py):
#: the skip-on probability stage must beat skip-off by this factor ...
SKIP_SPEEDUP_FLOOR = 1.5
#: ... on an index of at least this many components ...
SKIP_COMPONENT_FLOOR = 1000
#: ... with the analyses actually pruning a non-trivial share of them.
SKIP_FRACTION_FLOOR = 0.05

#: Smoke scale: large enough for stable timings, small enough for CI.
SMOKE_GROUPS = 40
SMOKE_SEED = 0

#: Budget headroom: a section fails only when > budget * (1 + margin).
REGRESSION_MARGIN = 0.25
#: Required speedup of the system's construction paths (ConOBDD
#: concatenation and MV-index build) over the recorded recursive kernel.
CONSTRUCTION_SPEEDUP = 2.0
#: Sections carrying the construction-speedup budget.
CONSTRUCTION_SECTIONS = ("fig8_concat", "index_build")
#: Tolerance for probability drift (probabilities are deterministic).  The
#: old absolute tolerance of 1e-9 was scale-blind: at the ~1e22 magnitude of
#: the recorded weights one ulp is ~8e6, so the check silently demanded
#: bit-identity.  The gate now compares in ulps (see repro.numerics).
PROBABILITY_TOLERANCE_ULPS = GATE_PROBABILITY_ULPS
#: Tolerance for apply-step (work-count) growth.
STEP_TOLERANCE = 0.05
#: Timed sections: best-of-N to suppress scheduler noise (the heavyweight
#: synthesis section uses fewer repeats, the sub-10ms sections more).
REPEATS = 3
REPEATS_SMALL = 7


def _calibrate() -> float:
    """Seconds for a fixed interpreter workload (dict/int heavy, like apply)."""

    def workload() -> int:
        table: dict[int, int] = {}
        total = 0
        for i in range(200_000):
            key = (i * 2654435761) & 0xFFFFFF
            hit = table.get(key)
            if hit is None:
                table[key] = i
            else:
                total += hit
        return total

    return min(_best_of(workload)[0] for __ in range(2))


def _best_of(function, repeats: int = REPEATS):
    best = float("inf")
    result = None
    for __ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def _worst_case_query(index: MVIndex, tuples: int = 20) -> DNF:
    """A query lineage touching every component (the Fig. 9 setup)."""
    touched = [min(component.variables) for component in index.components.values()]
    extra = [v for v in sorted(index.variables()) if v not in touched]
    return DNF([[v] for v in touched + extra[: max(0, tuples - len(touched))]])


def measure() -> dict:
    """Run the smoke-scale constructions and intersections; return raw metrics."""
    calibration = _calibrate()

    workload = build_mvdb(DblpConfig(group_count=SMOKE_GROUPS, seed=SMOKE_SEED))
    engine = MVQueryEngine(workload.mvdb, build_index=False)
    lineage = engine.w_lineage
    order = engine.order
    probabilities = engine.probabilities

    synthesis_s, synthesis = _best_of(
        lambda: build_obdd(lineage, order, method="synthesis")
    )
    concat_s, concat = _best_of(
        lambda: build_obdd(lineage, order, method="concat"), repeats=REPEATS_SMALL
    )
    index_s, index = _best_of(
        lambda: MVIndex(lineage, probabilities, order), repeats=REPEATS_SMALL
    )

    query = _worst_case_query(index)
    # Warm once (flat re-encoding is an offline cost), then time the traversals.
    mv_value = mv_intersect(index, query, probabilities)
    cc_value = cc_mv_intersect(index, query, probabilities)
    mv_s, __ = _best_of(
        lambda: mv_intersect(index, query, probabilities), repeats=REPEATS_SMALL
    )
    cc_s, __ = _best_of(
        lambda: cc_mv_intersect(index, query, probabilities), repeats=REPEATS_SMALL
    )

    single = DNF([[min(index.variables())]])

    # One end-to-end query through the serving session pins the typed
    # result's touched-component count.  This is the structural fact the
    # subscription evaluator's skip rule rests on (components a lineage
    # does not touch cancel in the conditional ratio), so a silent change
    # in component partitioning fails the gate even when sizes hold.
    engine.mv_index = index
    session_result = QuerySession(engine).execute(students_of_advisor("Advisor 0"))

    return {
        "scale": {"groups": SMOKE_GROUPS, "seed": SMOKE_SEED, "clauses": len(lineage)},
        "calibration_s": calibration,
        "sections": {
            "fig8_synthesis": synthesis_s / calibration,
            "fig8_concat": concat_s / calibration,
            "index_build": index_s / calibration,
            "fig9_mv_intersect": mv_s / calibration,
            "fig9_cc_intersect": cc_s / calibration,
        },
        "raw_seconds": {
            "fig8_synthesis": synthesis_s,
            "fig8_concat": concat_s,
            "index_build": index_s,
            "fig9_mv_intersect": mv_s,
            "fig9_cc_intersect": cc_s,
        },
        "apply_steps": {
            "synthesis": synthesis.manager.apply_steps,
            "concat": concat.manager.apply_steps,
        },
        "probabilities": {
            "p0_w": index.probability_w(),
            "worst_case_mv": mv_value,
            "worst_case_cc": cc_value,
            "single_tuple_cc": cc_mv_intersect(index, single, probabilities),
            "concat_root": concat.probability(probabilities),
            "synthesis_root": synthesis.probability(probabilities),
        },
        "structure": {
            "obdd_size": concat.size,
            "index_nodes": index.size,
            "index_components": index.component_count(),
            "query_touched_components": session_result.touched_components,
        },
    }


def budgets_from_reference(sections: dict) -> dict:
    """Budgets (normalized time) derived from a reference measurement.

    The ConOBDD concatenation and the MV-index build carry the
    iterative-kernel acceptance bar: their budgets are the recursive
    reference divided by the required speedup.  The CUDD-style synthesis
    strawman and the intersections simply must not regress past their
    reference.
    """
    budgets = dict(sections)
    for section in CONSTRUCTION_SECTIONS:
        budgets[section] = sections[section] / CONSTRUCTION_SPEEDUP
    return budgets


def compare(current: dict, baseline: dict, margin: float = REGRESSION_MARGIN) -> list[str]:
    """All gate violations of ``current`` against ``baseline`` (empty = pass).

    ``margin`` is the wall-clock headroom: a timed section fails only when
    it exceeds its budget by more than this fraction.  CI runners are noisy
    shared machines, so the CI job passes a larger margin than the local
    default; probability, structure and work-count checks are exact either
    way.
    """
    failures: list[str] = []

    for name, expected in baseline["probabilities"].items():
        actual = current["probabilities"].get(name)
        if actual is None or not within_ulps(actual, expected, PROBABILITY_TOLERANCE_ULPS):
            failures.append(
                f"probability drift in {name}: {actual!r} vs baseline {expected!r} "
                f"(tolerance {PROBABILITY_TOLERANCE_ULPS} ulps)"
            )

    for name, expected in baseline["structure"].items():
        actual = current["structure"].get(name)
        if actual != expected:
            failures.append(
                f"structure change in {name}: {actual!r} vs baseline {expected!r} "
                "(the compiled OBDDs are canonical; sizes must match exactly)"
            )

    for name, expected in baseline["apply_steps"].items():
        actual = current["apply_steps"].get(name, 0)
        if actual > expected * (1 + STEP_TOLERANCE):
            failures.append(
                f"apply-step regression in {name}: {actual} vs baseline {expected} "
                f"(> {STEP_TOLERANCE:.0%} growth)"
            )

    budgets = baseline["budgets"]
    for name, budget in budgets.items():
        actual = current["sections"][name]
        if actual > budget * (1 + margin):
            failures.append(
                f"construction-time regression in {name}: normalized {actual:.3f} "
                f"vs budget {budget:.3f} (> {margin:.0%} over budget)"
            )
    return failures


def check_serving_csv(path: Path) -> list[str]:
    """Violations of the recorded write-path evidence (empty = pass).

    The committed serving CSV is the durable record of the non-blocking
    write path: its ``ingest-extend`` row's query p99 (write ops are
    tagged out of that column by the loadgen) must be within
    ``INGEST_STALL_FACTOR`` of the ``ingest-steady`` row's.  The live
    re-measurement happens in ``bench_serving.py --gate``; this check
    keeps the committed evidence from silently going stale or missing.
    """
    if not path.exists():
        return [f"serving CSV missing at {path}; run scripts/bench_serving.py"]
    with path.open(newline="") as handle:
        rows = {row["mode"]: row for row in csv.DictReader(handle)}
    failures: list[str] = []
    for mode in ("ingest-steady", "ingest-extend"):
        if mode not in rows:
            failures.append(f"serving CSV at {path} has no {mode} row")
    if failures:
        return failures
    steady = float(rows["ingest-steady"]["p99_ms"])
    during = float(rows["ingest-extend"]["p99_ms"])
    if steady <= 0:
        return [f"serving CSV records a zero steady-state p99 ({path})"]
    if during > steady * INGEST_STALL_FACTOR:
        failures.append(
            f"recorded extend-in-flight query p99 {during:.3f}ms exceeds "
            f"{INGEST_STALL_FACTOR:g}x the steady-state p99 {steady:.3f}ms "
            f"({path}; re-run scripts/bench_serving.py)"
        )
    return failures


def check_skipping_csv(path: Path) -> list[str]:
    """Violations of the recorded skip-effectiveness evidence (empty = pass).

    The committed ablation CSV is the durable record of the data-skipping
    layer: the skip-on probability stage must beat skip-off by
    ``SKIP_SPEEDUP_FLOOR`` on an index of at least ``SKIP_COMPONENT_FLOOR``
    components, the analyses must prune at least ``SKIP_FRACTION_FLOOR`` of
    them, and — the soundness receipt — both modes' probabilities must
    agree within ``GATE_PROBABILITY_ULPS``.  The ``skip-gate`` CI job
    re-measures and re-checks fresh; this check keeps the committed
    evidence from silently going stale or missing.
    """
    if not path.exists():
        return [f"skipping CSV missing at {path}; run scripts/bench_skipping.py"]
    with path.open(newline="") as handle:
        rows = {row["mode"]: row for row in csv.DictReader(handle)}
    failures: list[str] = []
    for mode in ("skip_on", "skip_off"):
        if mode not in rows:
            failures.append(f"skipping CSV at {path} has no {mode} row")
    if failures:
        return failures
    on = float(rows["skip_on"]["seconds"])
    off = float(rows["skip_off"]["seconds"])
    components = int(rows["skip_on"]["components"])
    fraction = float(rows["skip_on"]["fraction_skipped"])
    max_ulps = int(rows["skip_on"]["max_ulps"])
    if on <= 0:
        return [f"skipping CSV records a zero skip-on time ({path})"]
    if components < SKIP_COMPONENT_FLOOR:
        failures.append(
            f"skipping ablation ran at only {components} components "
            f"(floor {SKIP_COMPONENT_FLOOR}; re-run scripts/bench_skipping.py)"
        )
    if off / on < SKIP_SPEEDUP_FLOOR:
        failures.append(
            f"recorded skip speedup {off / on:.2f}x is below the "
            f"{SKIP_SPEEDUP_FLOOR:g}x floor ({path}; the skip layer stopped paying for itself)"
        )
    if fraction < SKIP_FRACTION_FLOOR:
        failures.append(
            f"recorded skip fraction {fraction:.1%} is below the "
            f"{SKIP_FRACTION_FLOOR:.0%} floor ({path}; the analyses stopped pruning)"
        )
    if max_ulps > PROBABILITY_TOLERANCE_ULPS:
        failures.append(
            f"recorded skip-on/skip-off probability drift of {max_ulps} ulps exceeds "
            f"the {PROBABILITY_TOLERANCE_ULPS}-ulp tolerance ({path}; "
            "skipping must be a provable prune, never an approximation)"
        )
    return failures


def render_report(current: dict, baseline: dict | None) -> str:
    lines = [
        f"bench gate @ groups={current['scale']['groups']} "
        f"({current['scale']['clauses']} W clauses), "
        f"calibration {current['calibration_s'] * 1000:.1f}ms",
    ]
    for name, normalized in current["sections"].items():
        raw = current["raw_seconds"][name]
        line = f"  {name:<20} {raw * 1000:8.1f}ms  (normalized {normalized:8.3f}"
        if baseline is not None:
            reference = baseline["sections"].get(name)
            budget = baseline["budgets"].get(name)
            if reference:
                line += f", {reference / normalized:4.2f}x vs recorded reference"
            if budget is not None:
                line += f", budget {budget:.3f}"
        line += ")"
        lines.append(line)
    steps = current["apply_steps"]
    lines.append(
        f"  apply steps: synthesis={steps['synthesis']} concat={steps['concat']}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="baseline JSON path"
    )
    parser.add_argument(
        "--serving-csv",
        type=Path,
        default=DEFAULT_SERVING_CSV,
        help="recorded serving benchmark CSV holding the ingest row pair",
    )
    parser.add_argument(
        "--skipping-csv",
        type=Path,
        default=DEFAULT_SKIPPING_CSV,
        help="recorded skip-effectiveness ablation CSV",
    )
    parser.add_argument(
        "--update", action="store_true", help="re-record the baseline instead of gating"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the raw measurement as JSON"
    )
    parser.add_argument(
        "--margin",
        type=float,
        default=REGRESSION_MARGIN,
        help="wall-clock headroom over budget before failing "
        f"(default {REGRESSION_MARGIN}; CI uses a larger value for noisy runners)",
    )
    args = parser.parse_args(argv)

    current = measure()

    if args.update:
        baseline = {
            "description": (
                "bench-gate reference measurement; budgets are normalized "
                "(seconds / calibration) — see scripts/bench_gate.py"
            ),
            "scale": current["scale"],
            "calibration_s": current["calibration_s"],
            "sections": current["sections"],
            "budgets": budgets_from_reference(current["sections"]),
            "apply_steps": current["apply_steps"],
            "probabilities": current["probabilities"],
            "structure": current["structure"],
        }
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(render_report(current, baseline))
        print(f"baseline recorded at {args.baseline}")
        return 0

    if args.json:
        print(json.dumps(current, indent=2, sort_keys=True))

    if not args.baseline.exists():
        print(f"error: no baseline at {args.baseline}; run with --update", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())

    if baseline["scale"] != current["scale"]:
        print(
            f"error: baseline scale {baseline['scale']} does not match "
            f"current scale {current['scale']}; re-record with --update",
            file=sys.stderr,
        )
        return 2

    print(render_report(current, baseline))
    failures = compare(current, baseline, margin=args.margin)
    failures.extend(check_serving_csv(args.serving_csv))
    failures.extend(check_skipping_csv(args.skipping_csv))
    if failures:
        print("\nBENCH GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
