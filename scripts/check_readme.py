"""docs-check: run every ``python`` code block of a markdown file.

Extracts fenced ```python blocks from the given markdown files (default:
``README.md`` and ``docs/api.md``) and executes each one in a fresh
subprocess with ``src`` on ``PYTHONPATH`` — and with
``DeprecationWarning`` promoted to an error, so a documented snippet can
neither drift from the library's actual API nor quietly lean on the
deprecated import surface.  A block that exits non-zero fails the check.
Shell blocks (```bash) are not executed.

Also render-checks the docstring surface: ``python -m pydoc`` must be able
to render every module listed in ``PYDOC_MODULES`` without error.

Usage::

    python scripts/check_readme.py [README.md docs/foo.md ...]
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files checked when none are given on the command line.
DEFAULT_FILES = ["README.md", "docs/api.md", "docs/serving.md", "docs/architecture.md"]

#: Modules whose pydoc rendering is part of the documentation contract.
PYDOC_MODULES = [
    "repro",
    "repro.client",
    "repro.methods",
    "repro.results",
    "repro.serving",
    "repro.serving.artifact",
    "repro.serving.canonical",
    "repro.serving.dispatch",
    "repro.serving.fleet",
    "repro.serving.loadgen",
    "repro.serving.router",
    "repro.serving.server",
    "repro.serving.session",
    "repro.subscribe",
    "repro.subscribe.evaluator",
    "repro.subscribe.registry",
    "repro.subscribe.sinks",
    "repro.mvindex.augmented",
    "repro.obdd.manager",
    "repro.core.engine",
]

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(markdown: str) -> list[str]:
    """The contents of every fenced ```python block, in order."""
    return [match.group(1) for match in _BLOCK_RE.finditer(markdown)]


def run_block(source: str, label: str, env: dict[str, str]) -> bool:
    """Execute one block in a subprocess; report and return success."""
    completed = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", "-c", source],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    if completed.returncode != 0:
        print(f"FAIL {label}")
        sys.stdout.write(completed.stdout)
        sys.stderr.write(completed.stderr)
        return False
    print(f"ok   {label}")
    return True


def check_pydoc(env: dict[str, str]) -> bool:
    """Render every contract module with pydoc; any error fails the check."""
    ok = True
    for module in PYDOC_MODULES:
        completed = subprocess.run(
            [sys.executable, "-m", "pydoc", module],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=120,
        )
        rendered = completed.returncode == 0 and module.rsplit(".", 1)[-1] in completed.stdout
        print(f"{'ok  ' if rendered else 'FAIL'} pydoc {module}")
        ok = ok and rendered
    return ok


def main(argv: list[str]) -> int:
    files = [Path(name) for name in argv] or [REPO_ROOT / name for name in DEFAULT_FILES]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    ok = True
    for path in files:
        blocks = python_blocks(path.read_text(encoding="utf-8"))
        if not blocks:
            print(f"warn {path}: no python blocks found")
        for index, block in enumerate(blocks, start=1):
            ok = run_block(block, f"{path}#python-block-{index}", env) and ok
    ok = check_pydoc(env) and ok
    if not ok:
        print("docs-check failed", file=sys.stderr)
        return 1
    print("docs-check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
