#!/usr/bin/env python
"""Standing-query scaling: subscriptions vs tick latency vs fraction skipped.

For each standing-query count, the benchmark registers that many
subscriptions (zipf-drawn from the DBLP workload mix, alternating change
and threshold predicates) directly against an in-process
:class:`~repro.serving.dispatch.Dispatcher` +
:class:`~repro.subscribe.SubscriptionService`, then streams a fixed number
of append ticks through the same rotating batch mix the loadgen uses
(:func:`~repro.serving.loadgen.subscription_batch_facts`: answer-changing,
provably-skippable, and all-overlapping-but-quiet) and records per-tick
latency plus the evaluator's fire/skip split.

The committed ``benchmarks/results/subscription_scaling.csv`` (referenced
from the README) is this script's output: one row per standing-query
count with mean/p95 tick latency and the fraction of subscription
evaluations the delta-overlap rule provably skipped.

Usage::

    python scripts/bench_subscriptions.py                     # CSV to stdout + file
    python scripts/bench_subscriptions.py --counts 100,1000   # custom sweep
"""

from __future__ import annotations

import argparse
import csv
import random
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402
from repro.dblp.config import DblpConfig  # noqa: E402
from repro.dblp.workload import build_mvdb  # noqa: E402
from repro.serving.dispatch import Dispatcher  # noqa: E402
from repro.serving.loadgen import WorkloadMix, subscription_batch_facts  # noqa: E402
from repro.subscribe import SubscriptionService  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "results" / "subscription_scaling.csv"
FIELDS = (
    "standing_queries",
    "ticks",
    "mean_tick_ms",
    "p95_tick_ms",
    "evaluations",
    "skips",
    "skips_signature",
    "skips_bitmap",
    "fraction_skipped",
    "notifications",
)


def run_point(
    subscriptions: int, ticks: int, groups: int, entities: int, seed: int
) -> dict:
    """One sweep point: register, tick, report — on a fresh engine."""
    workload = build_mvdb(DblpConfig(group_count=groups, seed=seed))
    engine = repro.connect(workload.mvdb).engine
    dispatcher = Dispatcher(engine, workers=2)
    service = SubscriptionService(dispatcher)
    try:
        rng = random.Random(seed * 48611 + 3)
        sample_query = WorkloadMix(entities=entities).sampler(rng)
        for index in range(subscriptions):
            spec: dict = {"query": sample_query(), "method": "mvindex"}
            if index % 2:
                spec["predicate"] = {"kind": "threshold", "op": ">=", "value": 0.5}
            service.subscribe(spec, persist=False)
        tick_ms: list[float] = []
        for batch_index in range(ticks):
            dispatcher.append_facts(
                subscription_batch_facts(batch_index, batch_size=4, entities=entities)
            )
            tick_ms.append(service.stats()["last_tick_ms"])
        stats = service.stats()
    finally:
        service.close()
        dispatcher.close()
    tick_ms.sort()
    evaluations = stats["evaluations_total"]  # tick evaluations (baselines excluded)
    skips = stats["skips_total"]
    return {
        "standing_queries": subscriptions,
        "ticks": ticks,
        "mean_tick_ms": round(sum(tick_ms) / len(tick_ms), 3),
        "p95_tick_ms": round(tick_ms[min(len(tick_ms) - 1, int(0.95 * len(tick_ms)))], 3),
        "evaluations": evaluations,
        "skips": skips,
        # Attribution: skips proven by relation signatures alone (the delta
        # touched no indexed component) vs ones that needed the variable
        # bitmaps (components were touched, but none the subscription reads).
        "skips_signature": stats["skips_signature_total"],
        "skips_bitmap": stats["skips_bitmap_total"],
        "fraction_skipped": round(skips / max(1, skips + evaluations), 4),
        "notifications": stats["notifications_total"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--counts",
        default="100,300,1000,3000",
        help="comma-separated standing-query counts to sweep",
    )
    parser.add_argument("--ticks", type=int, default=30, help="append ticks per point")
    parser.add_argument("--groups", type=int, default=6, help="DBLP research groups")
    parser.add_argument("--entities", type=int, default=3, help="query entities per template")
    parser.add_argument("--seed", type=int, default=0, help="sampling seed")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="CSV path (committed evidence)"
    )
    args = parser.parse_args(argv)

    counts = [int(part) for part in args.counts.split(",") if part.strip()]
    rows = []
    for count in counts:
        row = run_point(count, args.ticks, args.groups, args.entities, args.seed)
        rows.append(row)
        print(
            f"{row['standing_queries']:>6} subs: mean tick {row['mean_tick_ms']:.2f}ms, "
            f"p95 {row['p95_tick_ms']:.2f}ms, skipped {row['fraction_skipped']:.0%} "
            f"({row['skips_signature']} by signature, {row['skips_bitmap']} by bitmap), "
            f"{row['notifications']} notifications"
        )

    args.out.parent.mkdir(parents=True, exist_ok=True)
    with args.out.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDS)
        writer.writeheader()
        writer.writerows(rows)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
