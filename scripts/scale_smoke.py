#!/usr/bin/env python
"""Scale smoke: build a 10^5-tuple DBLP MVDB on sqlite and gate wall time.

The disk-backed storage layer exists so that the Sect. 5 experiments run at
100x-1000x the seed's tuple counts.  This gate keeps that property from
regressing: it streams a ~10^5-tuple synthetic DBLP instance straight into
the sqlite backend, compiles the full MV-index, answers one fig-5 workload
query ("find the advisor of student X") end-to-end, and compares against the
committed baseline in ``benchmarks/results/scale_smoke_baseline.json``:

* **wall time must not blow up**: each timed section (generate+ingest,
  translate+lineage+index build, query) fails the gate when its *normalized*
  time exceeds ``baseline * 2`` — the regression this catches is the storage
  or join layer going accidentally quadratic, not scheduler noise;
* **answers must not drift**: the query's probabilities must match the
  baseline within the ulp tolerance of :mod:`repro.numerics` — scale must
  never buy approximation.

Wall-clock comparisons across machines are meaningless, so every run first
times a fixed pure-Python calibration workload and divides the measured
sections by it (the same scheme as ``scripts/bench_gate.py``).

Usage::

    python scripts/scale_smoke.py                 # compare against baseline
    python scripts/scale_smoke.py --update        # re-record the baseline
    python scripts/scale_smoke.py --json          # machine-readable report
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402
from repro.dblp.config import DblpConfig  # noqa: E402
from repro.dblp.workload import advisor_of_student, build_mvdb  # noqa: E402
from repro.numerics import GATE_PROBABILITY_ULPS, within_ulps  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "results" / "scale_smoke_baseline.json"

#: ~10^5 tuples with the default DblpConfig (calibrated: ~210 rows/group).
SMOKE_GROUPS = 495
SMOKE_SEED = 0
#: The fig-5 query answered end-to-end.
SMOKE_STUDENT = "Student 0-0"
#: A section fails when normalized time > baseline * RegressionFactor.
REGRESSION_FACTOR = 2.0
#: The build must actually reach smoke scale (guards the generator config).
MIN_TUPLES = 100_000


def _calibrate() -> float:
    """Seconds for a fixed interpreter workload (dict/int heavy, like joins)."""

    def workload() -> int:
        table: dict[int, int] = {}
        total = 0
        for i in range(200_000):
            key = (i * 2654435761) & 0xFFFFFF
            hit = table.get(key)
            if hit is None:
                table[key] = i
            else:
                total += hit
        return total

    best = float("inf")
    for __ in range(3):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def measure(groups: int = SMOKE_GROUPS) -> dict:
    """One cold end-to-end run at smoke scale; returns raw metrics."""
    calibration = _calibrate()

    start = time.perf_counter()
    workload = build_mvdb(
        DblpConfig(group_count=groups, seed=SMOKE_SEED), backend="sqlite"
    )
    ingest_s = time.perf_counter() - start
    tuples = workload.mvdb.database.total_rows()

    start = time.perf_counter()
    db = repro.connect(workload.mvdb)
    build_s = time.perf_counter() - start

    query = advisor_of_student(SMOKE_STUDENT)
    start = time.perf_counter()
    result = db.query(str(query))
    query_s = time.perf_counter() - start

    probabilities = {
        "|".join(map(str, row.values)): row.probability for row in result
    }
    return {
        "description": (
            "scale smoke: sqlite-backed DBLP build + MV-index + one fig-5 "
            "query; sections are seconds / calibration (normalized)"
        ),
        "scale": {
            "groups": groups,
            "seed": SMOKE_SEED,
            "tuples": tuples,
            "backend": workload.mvdb.database.backend.name,
            "w_lineage_clauses": db.engine.w_lineage_size,
        },
        "calibration_s": calibration,
        "sections": {
            "ingest": ingest_s / calibration,
            "engine_build": build_s / calibration,
            "query": query_s / calibration,
        },
        "probabilities": probabilities,
    }


def compare(
    current: dict,
    baseline: dict,
    factor: float = REGRESSION_FACTOR,
    min_tuples: int = MIN_TUPLES,
) -> list[str]:
    """All gate violations of ``current`` against ``baseline`` (empty = pass)."""
    failures: list[str] = []

    tuples = current["scale"]["tuples"]
    if tuples < min_tuples:
        failures.append(f"scale regression: built only {tuples} tuples (< {min_tuples})")
    if current["scale"]["backend"] != "sqlite":
        failures.append(f"wrong backend: {current['scale']['backend']!r} (expected sqlite)")

    if current["scale"]["groups"] != baseline["scale"]["groups"]:
        # Off-baseline scale (the nightly 10^6-tuple run): per-section budgets
        # and the recorded answers only hold at the baseline's group count, so
        # drop to sanity checks — the query must still return in-range answers.
        if not current["probabilities"]:
            failures.append("off-baseline run: the fig-5 query returned no answers")
        for answer, probability in current["probabilities"].items():
            if not 0.0 < probability <= 1.0:
                failures.append(
                    f"off-baseline run: probability for {answer} out of range "
                    f"({probability!r})"
                )
        return failures

    for name, budget in baseline["sections"].items():
        actual = current["sections"].get(name)
        if actual is None or actual > budget * factor:
            failures.append(
                f"wall-time regression in {name}: normalized {actual!r} vs "
                f"baseline {budget!r} (allowed {factor}x)"
            )

    expected_probs = baseline["probabilities"]
    actual_probs = current["probabilities"]
    if set(expected_probs) != set(actual_probs):
        failures.append(
            f"answer drift: {sorted(actual_probs)} vs baseline {sorted(expected_probs)}"
        )
    else:
        for answer, expected in expected_probs.items():
            actual = actual_probs[answer]
            if not within_ulps(actual, expected, GATE_PROBABILITY_ULPS):
                failures.append(
                    f"probability drift for {answer}: {actual!r} vs baseline "
                    f"{expected!r} (tolerance {GATE_PROBABILITY_ULPS} ulps)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--update", action="store_true", help="re-record the baseline")
    parser.add_argument("--json", action="store_true", help="machine-readable report")
    parser.add_argument(
        "--factor",
        type=float,
        default=REGRESSION_FACTOR,
        help="allowed wall-time multiple over the baseline (default: 2.0)",
    )
    parser.add_argument(
        "--groups",
        type=int,
        default=SMOKE_GROUPS,
        help="DBLP research groups (default ~10^5 tuples; nightly runs 10x)",
    )
    parser.add_argument(
        "--min-tuples",
        type=int,
        default=MIN_TUPLES,
        help="fail unless the build reaches this many tuples",
    )
    args = parser.parse_args(argv)

    current = measure(groups=args.groups)

    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"baseline recorded: {args.baseline}")
        return 0

    baseline = json.loads(args.baseline.read_text())
    failures = compare(
        current, baseline, factor=args.factor, min_tuples=args.min_tuples
    )

    if args.json:
        print(json.dumps({"current": current, "failures": failures}, indent=2))
    else:
        scale = current["scale"]
        print(
            f"scale smoke: {scale['tuples']} tuples on {scale['backend']} "
            f"({scale['groups']} groups, {scale['w_lineage_clauses']} W clauses)"
        )
        for name, value in current["sections"].items():
            budget = baseline["sections"].get(name)
            print(f"  {name:14} normalized {value:8.3f}  (baseline {budget!r})")
        for failure in failures:
            print(f"FAIL: {failure}")
        print("scale smoke " + ("failed" if failures else "passed"))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
