#!/usr/bin/env python
"""Skip-effectiveness ablation: the evidence behind the skip-gate CI job.

Builds a synthetic DBLP MV-index at >= 1000 components (the Fig. 9 scale
where per-answer full-index scans start to dominate), evaluates a pool of
selective ``students_of_advisor`` queries twice — once with the summary
driven skip analysis, once with it disabled — and records the ablation in
``benchmarks/results/skipping_ablation.csv``:

* ``mode``: ``skip_on`` / ``skip_off``;
* ``seconds``: best-of-N wall time of the *probability stage* (relational
  evaluation and lineage extraction are identical in both modes and paid
  once, before the clock starts);
* ``components`` / ``fraction_skipped``: index size and the mean fraction
  of components the per-query analyses proved irrelevant;
* ``max_ulps``: the largest probability difference between the two modes,
  in units in the last place — the soundness receipt.  Skipping is a
  provable prune, so this must stay within ``GATE_PROBABILITY_ULPS``.

``scripts/bench_gate.py check_skipping_csv`` (run by the required
``skip-gate`` CI job, and against the committed CSV by ``bench-gate``)
fails when the recorded speedup falls below the floor, the skip fraction
collapses, or the probabilities drift.

Usage::

    python scripts/bench_skipping.py                # write the CSV
    python scripts/bench_skipping.py --json         # machine-readable report
    python scripts/bench_skipping.py --groups 100   # smaller smoke scale
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.engine import MVQueryEngine  # noqa: E402
from repro.dblp.config import DblpConfig  # noqa: E402
from repro.dblp.workload import build_mvdb, students_of_advisor  # noqa: E402
from repro.mvindex.cc_intersect import prewarm_flat_encodings  # noqa: E402
from repro.numerics import ulps_between  # noqa: E402
from repro.query.evaluator import evaluate_ucq  # noqa: E402
from repro.query.ucq import as_ucq  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "results" / "skipping_ablation.csv"

#: Ablation scale: 400 synthetic groups compile to ~1000 MV-index
#: components, the floor the skip-gate enforces.
DEFAULT_GROUPS = 400
DEFAULT_SEED = 0
#: Selective queries evaluated per mode (each touches a handful of the
#: index's components — the serving workload shape).
DEFAULT_QUERIES = 8
#: Best-of-N timing to suppress scheduler noise.
REPEATS = 3

FIELDS = [
    "mode",
    "seconds",
    "queries",
    "answers",
    "components",
    "fraction_skipped",
    "max_ulps",
    "groups",
    "seed",
]


def _best_of(function, repeats: int = REPEATS) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def measure(groups: int, seed: int, query_count: int) -> dict:
    """Run both modes over one prepared workload; return the raw ablation."""
    workload = build_mvdb(DblpConfig(group_count=groups, seed=seed))
    engine = MVQueryEngine(workload.mvdb)
    if engine.mv_index is None or engine.summaries is None:
        raise SystemExit("the ablation needs an MV-index (and its summaries)")
    method = engine.resolve_method("mvindex")

    # The relational stage is identical in both modes: evaluate once, keep
    # the per-answer lineages, and time only the probability stage.
    queries = [as_ucq(students_of_advisor(f"Advisor {i}")) for i in range(query_count)]
    lineage_sets = []
    for query in queries:
        result = evaluate_ucq(query, engine.indb.database, engine.indb)
        lineage_sets.append(list(result.lineages().values()))
    engine.p0_w()
    prewarm_flat_encodings(engine.mv_index)

    def run(use_skip: bool) -> list[float]:
        answers: list[float] = []
        for query, lineages in zip(queries, lineage_sets):
            # The per-query analysis is charged to the skip-on clock — the
            # ablation prices the whole skip layer, not just its benefit.
            skip = engine.skip_analysis(query) if use_skip else None
            for lineage in lineages:
                if skip is not None:
                    answers.append(method.probability(engine, lineage, skip=skip))
                else:
                    answers.append(method.probability(engine, lineage))
        return answers

    answers_on = run(True)
    answers_off = run(False)
    max_ulps = max(
        (ulps_between(on, off) for on, off in zip(answers_on, answers_off)),
        default=0,
    )
    seconds_on = _best_of(lambda: run(True))
    seconds_off = _best_of(lambda: run(False))

    components = engine.mv_index.component_count()
    skipped_fractions = [
        engine.skip_analysis(query).skipped_count / components for query in queries
    ]
    fraction_skipped = sum(skipped_fractions) / len(skipped_fractions)

    return {
        "groups": groups,
        "seed": seed,
        "queries": len(queries),
        "answers": len(answers_on),
        "components": components,
        "fraction_skipped": fraction_skipped,
        "max_ulps": max_ulps,
        "seconds_on": seconds_on,
        "seconds_off": seconds_off,
        "speedup": seconds_off / seconds_on if seconds_on else float("inf"),
    }


def write_csv(path: Path, report: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    shared = {
        "queries": report["queries"],
        "answers": report["answers"],
        "components": report["components"],
        "fraction_skipped": f"{report['fraction_skipped']:.6f}",
        "max_ulps": report["max_ulps"],
        "groups": report["groups"],
        "seed": report["seed"],
    }
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDS)
        writer.writeheader()
        writer.writerow({"mode": "skip_on", "seconds": f"{report['seconds_on']:.6f}", **shared})
        writer.writerow({"mode": "skip_off", "seconds": f"{report['seconds_off']:.6f}", **shared})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--groups", type=int, default=DEFAULT_GROUPS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="CSV output path")
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    args = parser.parse_args(argv)

    report = measure(args.groups, args.seed, args.queries)
    write_csv(args.out, report)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"skipping ablation @ groups={report['groups']} "
            f"({report['components']} components, {report['answers']} answers)"
        )
        print(
            f"  skip on : {report['seconds_on'] * 1000:8.1f}ms  "
            f"(mean {report['fraction_skipped']:.1%} of components skipped)"
        )
        print(f"  skip off: {report['seconds_off'] * 1000:8.1f}ms")
        print(
            f"  speedup : {report['speedup']:.2f}x, max drift {report['max_ulps']} ulps"
        )
        print(f"  csv     : {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
