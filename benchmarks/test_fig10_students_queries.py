"""Fig. 10: per-query latency of ten "students of advisor X" queries (full dataset)."""

from conftest import emit

from repro.experiments import fig10_students_of_advisor


def test_fig10_students_queries(benchmark, full_settings, dblp_workload, dblp_engine, results_dir):
    result = benchmark.pedantic(
        lambda: fig10_students_of_advisor(full_settings, dblp_workload, dblp_engine),
        rounds=1,
        iterations=1,
    )
    emit(result, results_dir)
    seconds = result.column("seconds")
    answers = result.column("answers")
    assert len(seconds) == full_settings.query_count
    # Paper shape: every query answers in the low-millisecond range because only a
    # small portion of the MV-index is touched.  Allow generous headroom for the
    # pure-Python engine; the key property is that no query degenerates.
    assert max(seconds) < 2.0
    assert max(seconds) < 50 * max(min(seconds), 1e-4)
    assert any(count > 0 for count in answers)
