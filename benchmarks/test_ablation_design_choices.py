"""Ablation benchmarks for the design choices called out in DESIGN.md.

* offline index construction: ConOBDD concatenation vs CUDD-style synthesis
  (the same ablation as Fig. 8, but measured on the full V1+V2 index build);
* online component pruning: a selective workload query touches only a small
  fraction of the MV-index components, which is what makes Figs. 10/11 flat.
"""

from conftest import emit

from repro.experiments import ExperimentResult, time_call
from repro.experiments.sweeps import base_dataset, sweep_aid_values
from repro.core.engine import MVQueryEngine
from repro.dblp import build_sweep_mvdb, students_of_advisor
from repro.mvindex import IntersectStatistics, MVIndex, cc_mv_intersect
from repro.query.evaluator import evaluate_ucq


def test_ablation_index_construction_method(benchmark, sweep_settings, results_dir):
    """Building the MV-index with concatenation must not lose to pure synthesis."""

    def run() -> ExperimentResult:
        data = base_dataset(sweep_settings)
        max_aid = sweep_aid_values(data, sweep_settings.points)[-1]
        workload = build_sweep_mvdb(data, max_aid, include_views=("V1", "V2"))
        engine = MVQueryEngine(workload.mvdb, build_index=False)
        result = ExperimentResult(
            name="ablation_index_construction",
            description="MV-index build: ConOBDD concatenation vs CUDD-style synthesis",
            columns=["method", "seconds", "index_nodes"],
        )
        for method in ("concat", "synthesis"):
            seconds, index = time_call(
                lambda m=method: MVIndex(
                    engine.w_lineage, engine.probabilities, engine.order, construction=m
                )
            )
            result.add_row(method=method, seconds=seconds, index_nodes=index.size)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, results_dir)
    by_method = {row["method"]: row for row in result.rows}
    assert by_method["concat"]["index_nodes"] == by_method["synthesis"]["index_nodes"]
    assert by_method["concat"]["seconds"] <= 1.5 * by_method["synthesis"]["seconds"]


def test_ablation_component_pruning(benchmark, full_settings, dblp_workload, dblp_engine, results_dir):
    """A selective query must touch only a small fraction of the index components."""

    def run() -> ExperimentResult:
        engine = dblp_engine
        query = students_of_advisor("Advisor 0")
        evaluated = evaluate_ucq(query, engine.indb.database, engine.indb)
        statistics = IntersectStatistics()
        touched_total = 0
        for lineage in evaluated.lineages().values():
            per_answer = IntersectStatistics()
            cc_mv_intersect(engine.mv_index, lineage, engine.probabilities, statistics=per_answer)
            touched_total = max(touched_total, per_answer.touched_components)
            statistics.pair_expansions += per_answer.pair_expansions
        result = ExperimentResult(
            name="ablation_component_pruning",
            description="MV-index components touched by one selective workload query",
            columns=["total_components", "max_touched_components", "pair_expansions"],
        )
        result.add_row(
            total_components=engine.mv_index.component_count(),
            max_touched_components=touched_total,
            pair_expansions=statistics.pair_expansions,
        )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, results_dir)
    row = result.rows[0]
    assert row["max_touched_components"] < row["total_components"] / 2
