"""Fig. 7: OBDD size of W (denial view V2) grows linearly with the aid1 domain."""

from conftest import emit

from repro.experiments import fig7_fig8_obdd_construction


def test_fig7_obdd_size(benchmark, sweep_settings, results_dir):
    sizes, __ = benchmark.pedantic(
        lambda: fig7_fig8_obdd_construction(sweep_settings), rounds=1, iterations=1
    )
    emit(sizes, results_dir)
    obdd_sizes = sizes.column("obdd_size")
    domains = sizes.column("aid_domain")
    assert all(later >= earlier for earlier, later in zip(obdd_sizes, obdd_sizes[1:]))
    # Linear shape: the size per domain element stays within a small constant band.
    ratios = [size / domain for size, domain in zip(obdd_sizes, domains) if size]
    assert ratios and max(ratios) <= 6 * min(ratios)
    # V2 has a separator, so the ConOBDD width stays small (Proposition 2).
    assert max(sizes.column("obdd_width")) <= 16
