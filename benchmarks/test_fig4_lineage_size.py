"""Fig. 4: lineage size of the MarkoViews (W) as the aid domain grows."""

from conftest import emit

from repro.experiments import fig4_lineage_size


def test_fig4_lineage_size(benchmark, sweep_settings, results_dir):
    result = benchmark.pedantic(lambda: fig4_lineage_size(sweep_settings), rounds=1, iterations=1)
    emit(result, results_dir)
    sizes = result.column("lineage_size")
    domains = result.column("aid_domain")
    assert len(sizes) == sweep_settings.points
    # Paper shape: the lineage grows monotonically (roughly linearly) with the domain.
    assert all(later >= earlier for earlier, later in zip(sizes, sizes[1:]))
    assert sizes[-1] > sizes[0]
    growth = sizes[-1] / max(1, sizes[0])
    domain_growth = domains[-1] / max(1, domains[0])
    assert growth > 0.3 * domain_growth
