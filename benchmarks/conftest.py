"""Shared fixtures for the figure-regeneration benchmarks.

Every benchmark regenerates the data series of one table/figure of the paper
(at laptop scale), prints it, and writes it as CSV under
``benchmarks/results/`` so the numbers can be compared against the paper's
shapes (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.engine import MVQueryEngine
from repro.experiments import (
    FullDatasetSettings,
    SweepSettings,
    full_workload,
)

#: Directory that receives one CSV per regenerated figure.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def sweep_settings() -> SweepSettings:
    """Scale of the domain sweeps (Figs. 4-9)."""
    return SweepSettings(
        group_count=14,
        points=4,
        mcsat_samples=12,
        mcsat_burn_in=3,
        mcsat_max_flips=400,
        alchemy_cutoff=3,
    )


@pytest.fixture(scope="session")
def full_settings() -> FullDatasetSettings:
    """Scale of the full-dataset experiments (Figs. 1, 10, 11, §5.4)."""
    return FullDatasetSettings(group_count=24, query_count=10)


@pytest.fixture(scope="session")
def dblp_workload(full_settings):
    """The full synthetic DBLP workload (built once per benchmark session)."""
    return full_workload(full_settings)


@pytest.fixture(scope="session")
def dblp_engine(dblp_workload):
    """An engine with the MV-index built offline (shared by Figs. 10/11)."""
    return MVQueryEngine(dblp_workload.mvdb)


def emit(result, results_dir: Path) -> None:
    """Print a result table and persist it as CSV."""
    print()
    print(result.to_text())
    path = result.write_csv(results_dir)
    print(f"[written] {path}")
