"""Fig. 5: Alchemy (MC-SAT) vs augmented OBDD vs MV-index — "advisor of a student"."""

import math

from conftest import emit

from repro.experiments import fig5_advisor_of_student


def test_fig5_advisor_of_student(benchmark, sweep_settings, results_dir):
    result = benchmark.pedantic(
        lambda: fig5_advisor_of_student(sweep_settings), rounds=1, iterations=1
    )
    emit(result, results_dir)
    alchemy = [t for t in result.column("alchemy_total_s") if not math.isnan(t)]
    obdd = result.column("augmented_obdd_s")
    mvindex = result.column("mvindex_s")
    # Paper shape (Fig. 5): the MV-index is the fastest method at every point,
    # and Alchemy is slower than the MV-index wherever it runs at all.
    assert all(mv <= ob for mv, ob in zip(mvindex, obdd))
    assert all(a > m for a, m in zip(alchemy, mvindex))
    # The MV-index time stays roughly flat while the data grows.
    assert mvindex[-1] < 20 * max(mvindex[0], 1e-5)
