"""Fig. 1 (tables): the dataset inventory — base, derived and probabilistic relations."""

from conftest import emit

from repro.experiments import fig1_dataset_inventory


def test_fig1_dataset_inventory(benchmark, full_settings, results_dir):
    result = benchmark.pedantic(
        lambda: fig1_dataset_inventory(full_settings), rounds=1, iterations=1
    )
    emit(result, results_dir)
    relations = set(result.column("relation"))
    # The full Fig. 1 inventory must be present: base tables, derived views,
    # probabilistic tables and the three MarkoViews.
    assert {"Author", "Wrote", "Pub", "HomePage", "FirstPub", "DBLPAffiliation"} <= relations
    assert {"Student", "Advisor", "Affiliation", "V1", "V2", "V3"} <= relations
    counts = dict(zip(result.column("relation"), result.column("rows")))
    # Shape check: Wrote is the largest base table, Student the largest probabilistic one.
    assert counts["Wrote"] > counts["Author"]
    assert counts["Student"] > counts["Advisor"]
