"""Fig. 8: OBDD construction — CUDD-style synthesis vs ConOBDD concatenation."""

from conftest import emit

from repro.experiments import fig7_fig8_obdd_construction


def test_fig8_construction_time(benchmark, sweep_settings, results_dir):
    __, times = benchmark.pedantic(
        lambda: fig7_fig8_obdd_construction(sweep_settings.__class__(
            group_count=max(30, sweep_settings.group_count),
            points=sweep_settings.points,
            seed=sweep_settings.seed,
        )),
        rounds=1,
        iterations=1,
    )
    emit(times, results_dir)
    synthesis_steps = times.column("synthesis_apply_steps")
    concat_steps = times.column("concat_apply_steps")
    synthesis_time = times.column("cudd_synthesis_s")
    concat_time = times.column("mv_concatenation_s")
    # The concatenation-based construction performs (almost) no apply/synthesis
    # steps on the separator-ordered denial view — only the rare interleaving
    # components fall back to synthesis — while the CUDD baseline performs a
    # super-linearly growing number of them: the source of the Fig. 8 gap.
    assert sum(concat_steps) <= 0.1 * sum(synthesis_steps)
    assert synthesis_steps[-1] > synthesis_steps[0]
    assert synthesis_steps[-1] / max(1, synthesis_steps[0]) > (
        len(synthesis_steps)
    ), "synthesis work should grow super-linearly across the sweep"
    # At the largest point the concatenation build is faster than full synthesis.
    assert concat_time[-1] <= synthesis_time[-1]
