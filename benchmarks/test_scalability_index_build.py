"""§5.4: offline scalability — MV-index construction on the full synthetic dataset."""

from conftest import emit

from repro.experiments import scalability_index_build


def test_scalability_index_build(benchmark, full_settings, dblp_workload, results_dir):
    result = benchmark.pedantic(
        lambda: scalability_index_build(full_settings, dblp_workload), rounds=1, iterations=1
    )
    emit(result, results_dir)
    row = result.rows[0]
    # The index must actually cover the view lineage and be built in reasonable time
    # (the paper reports "under one hour" for the full DBLP; our scaled dataset
    # must build in well under a minute).
    assert row["index_nodes"] > 0
    assert row["index_components"] > 1
    assert row["w_lineage_clauses"] > 0
    assert row["index_build_s"] < 60.0
