"""Fig. 11: per-query latency of ten "affiliation of author Y" queries (full dataset)."""

from conftest import emit

from repro.experiments import fig11_affiliation_of_author


def test_fig11_affiliation_queries(
    benchmark, full_settings, dblp_workload, dblp_engine, results_dir
):
    result = benchmark.pedantic(
        lambda: fig11_affiliation_of_author(full_settings, dblp_workload, dblp_engine),
        rounds=1,
        iterations=1,
    )
    emit(result, results_dir)
    seconds = result.column("seconds")
    answers = result.column("answers")
    assert len(seconds) == full_settings.query_count
    assert max(seconds) < 2.0
    assert any(count > 0 for count in answers)
