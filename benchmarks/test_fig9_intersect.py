"""Fig. 9: worst-case intersection — MVIntersect vs cache-conscious CC-MVIntersect."""

from conftest import emit

from repro.experiments import fig9_intersection


def test_fig9_intersect(benchmark, sweep_settings, results_dir):
    result = benchmark.pedantic(lambda: fig9_intersection(sweep_settings), rounds=1, iterations=1)
    emit(result, results_dir)
    mv = result.column("mvintersect_s")
    cc = result.column("cc_mvintersect_s")
    nodes = result.column("index_nodes")
    # The index (and hence the worst-case traversal) grows along the sweep.
    assert nodes[-1] > nodes[0]
    assert max(mv) >= min(mv)
    # The cache-conscious layout must not lose overall.  The paper reports a ~2x
    # improvement with the C++ vector layout; the pure-Python re-encoding keeps
    # the same traversal and wins by a smaller margin (see EXPERIMENTS.md).
    assert sum(cc) <= 1.5 * sum(mv)
