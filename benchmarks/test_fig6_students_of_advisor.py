"""Fig. 6: Alchemy (MC-SAT) vs augmented OBDD vs MV-index — "students of an advisor"."""

import math

from conftest import emit

from repro.experiments import fig6_students_of_advisor


def test_fig6_students_of_advisor(benchmark, sweep_settings, results_dir):
    result = benchmark.pedantic(
        lambda: fig6_students_of_advisor(sweep_settings), rounds=1, iterations=1
    )
    emit(result, results_dir)
    alchemy = [t for t in result.column("alchemy_total_s") if not math.isnan(t)]
    obdd = result.column("augmented_obdd_s")
    mvindex = result.column("mvindex_s")
    assert all(mv <= ob for mv, ob in zip(mvindex, obdd))
    assert all(a > m for a, m in zip(alchemy, mvindex))
    # The online OBDD construction cost grows with the data; the index does not.
    assert obdd[-1] >= obdd[0]
